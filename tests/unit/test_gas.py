"""The gas schedule's dynamic rules."""

from __future__ import annotations

from repro.evm import gas as G


class TestIntrinsicGas:
    def test_empty_data(self):
        assert G.intrinsic_gas(b"") == 21_000

    def test_zero_bytes_cheaper_than_nonzero(self):
        assert G.intrinsic_gas(b"\x00") == 21_004
        assert G.intrinsic_gas(b"\x01") == 21_016

    def test_mixed(self):
        assert G.intrinsic_gas(b"\x00\x01\x00") == 21_000 + 4 + 16 + 4


class TestMemoryExpansion:
    def test_no_expansion_no_cost(self):
        assert G.memory_expansion_gas(0, 10) == 0

    def test_linear_term(self):
        assert G.memory_expansion_gas(1, 1) == 3

    def test_quadratic_kicks_in(self):
        # Expanding from 0 to 1024 words: 3*1024 + 1024^2/512 = 3072 + 2048.
        assert G.memory_expansion_gas(1024, 1024) == 5120

    def test_incremental_equals_total_difference(self):
        total = G.memory_expansion_gas(100, 100)
        first = G.memory_expansion_gas(60, 60)
        second = G.memory_expansion_gas(40, 100)
        assert first + second == total


class TestSload:
    def test_cold_vs_warm(self):
        assert G.sload_gas(cold=True) == 2_100
        assert G.sload_gas(cold=False) == 100


class TestSstore:
    """The canonical dynamic-cost opcode (gas-flow guards exist for this)."""

    def test_noop_write(self):
        assert G.sstore_gas(current=5, new=5, cold=False) == 100

    def test_fresh_set_is_most_expensive(self):
        assert G.sstore_gas(current=0, new=1, cold=False) == 20_000

    def test_reset(self):
        assert G.sstore_gas(current=1, new=2, cold=False) == 5_000

    def test_clear(self):
        assert G.sstore_gas(current=1, new=0, cold=False) == 5_000

    def test_cold_surcharge(self):
        warm = G.sstore_gas(current=0, new=1, cold=False)
        cold = G.sstore_gas(current=0, new=1, cold=True)
        assert cold - warm == 2_100

    def test_conflict_can_change_cost(self):
        # The gas-flow scenario: a conflicting tx flips the slot's prior
        # value between zero and non-zero, changing this write's price.
        assert G.sstore_gas(0, 7, False) != G.sstore_gas(3, 7, False)


class TestExp:
    def test_zero_exponent(self):
        assert G.exp_gas(0) == 10

    def test_per_byte(self):
        assert G.exp_gas(1) == 60
        assert G.exp_gas(255) == 60
        assert G.exp_gas(256) == 110
        assert G.exp_gas(1 << 248) == 10 + 50 * 32


class TestSizes:
    def test_sha3(self):
        assert G.sha3_gas(0) == 30
        assert G.sha3_gas(32) == 36
        assert G.sha3_gas(33) == 42

    def test_copy(self):
        assert G.copy_gas(0) == 0
        assert G.copy_gas(1) == 3
        assert G.copy_gas(64) == 6

    def test_log(self):
        assert G.log_gas(0, 0) == 375
        assert G.log_gas(3, 32) == 375 + 3 * 375 + 8 * 32


class TestCall:
    def test_plain(self):
        assert G.call_gas(value=0, cold_account=False) == 700

    def test_value_transfer_surcharge(self):
        assert G.call_gas(value=1, cold_account=False) == 9_700

    def test_cold_account_surcharge(self):
        assert G.call_gas(value=0, cold_account=True) == 700 + 2_500
