"""Workload generators: determinism, structure, Zipf statistics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    ZipfSampler,
    build_chain,
    conflict_ratio_block,
)
from repro.workloads.erc20_workload import hot_recipient_block
from repro.workloads.zipf import generalized_harmonic, zipf_head_share


@pytest.fixture(scope="module")
def chain():
    return build_chain(ChainSpec(tokens=4, amm_pairs=2, accounts=120))


class TestZipfSampler:
    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(100, 1.2)
        rng = random.Random(1)
        counts = [0] * 100
        for _ in range(3000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)

    def test_deterministic_under_seed(self):
        sampler = ZipfSampler(50, 1.0)
        assert sampler.sample_many(random.Random(7), 20) == sampler.sample_many(
            random.Random(7), 20
        )

    def test_samples_in_range(self):
        sampler = ZipfSampler(10, 2.0)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(500))

    def test_head_share_monotone_in_fraction(self):
        sampler = ZipfSampler(1000, 1.1)
        assert sampler.head_share(0.01) < sampler.head_share(0.1) < 1.0

    def test_higher_exponent_more_concentrated(self):
        flat = ZipfSampler(1000, 0.5).head_share(0.01)
        steep = ZipfSampler(1000, 2.0).head_share(0.01)
        assert steep > flat

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestHarmonic:
    def test_exact_small_values(self):
        assert generalized_harmonic(1, 1.0) == 1.0
        assert generalized_harmonic(2, 1.0) == pytest.approx(1.5)
        assert generalized_harmonic(3, 2.0) == pytest.approx(1 + 0.25 + 1 / 9)

    def test_asymptotic_continuity_at_boundary(self):
        # The asymptotic branch must agree with exact sums where they meet.
        for s in (0.8, 1.0, 1.3, 2.0):
            exact = sum(1.0 / k**s for k in range(1, 150_001))
            approx = generalized_harmonic(150_000, s)
            assert approx == pytest.approx(exact, rel=1e-6)

    def test_head_share_matches_sampler(self):
        # Closed form vs materialised CDF on a small population.
        sampler = ZipfSampler(5_000, 1.2)
        closed = zipf_head_share(5_000, 1.2, 0.01)
        assert closed == pytest.approx(sampler.head_share(0.01), rel=1e-6)

    def test_paper_fit_points(self):
        assert zipf_head_share(10_000_000, 1.10, 0.001) == pytest.approx(
            0.76, abs=0.02
        )
        assert zipf_head_share(200_000_000, 0.987, 0.001) == pytest.approx(
            0.62, abs=0.02
        )


class TestChainGenesis:
    def test_accounts_funded(self, chain):
        for account in chain.accounts[:5]:
            assert chain.world.get_balance(account) > 0

    def test_tokens_have_code_and_balances(self, chain):
        from repro.contracts import balance_slot

        for token in chain.tokens:
            assert chain.world.get_code(token)
            assert chain.world.get_storage(
                token, balance_slot(chain.accounts[0])
            ) > 0

    def test_amm_pairs_wired(self, chain):
        from repro.contracts.amm import RESERVE0_SLOT, TOKEN0_SLOT

        for pair, token0, _token1 in chain.amm_pairs:
            assert chain.world.get_code(pair)
            assert chain.world.get_storage(pair, RESERVE0_SLOT) > 0
            stored = chain.world.get_storage(pair, TOKEN0_SLOT)
            assert stored == int.from_bytes(token0, "big")

    def test_fresh_world_is_isolated(self, chain):
        w1 = chain.fresh_world()
        w1.set_balance(chain.accounts[0], 0)
        assert chain.world.get_balance(chain.accounts[0]) > 0

    def test_nonce_counter_sequential(self, chain):
        sender = chain.accounts[0]
        first = chain.next_nonce(sender)
        assert chain.next_nonce(sender) == first + 1


class TestMainnetWorkload:
    def test_block_deterministic(self, chain):
        wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=30))
        b1 = wl.block(14_000_123)
        wl2 = MainnetWorkload(chain, MainnetConfig(txs_per_block=30))
        b2 = wl2.block(14_000_123)
        assert [(t.sender, t.to, t.data) for t in b1.txs] == [
            (t.sender, t.to, t.data) for t in b2.txs
        ]

    def test_blocks_differ_by_number(self, chain):
        wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=30))
        assert [t.data for t in wl.block(1).txs] != [
            t.data for t in wl.block(2).txs
        ]

    def test_tx_indices_assigned(self, chain):
        wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=10))
        block = wl.block(1)
        assert [tx.tx_index for tx in block.txs] == list(range(10))

    def test_mix_contains_all_transaction_kinds(self, chain):
        wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=200))
        block = wl.block(42)
        targets = {tx.to for tx in block.txs}
        assert targets & set(chain.tokens)
        assert targets & {p for p, _, _ in chain.amm_pairs}
        assert targets & set(chain.crowdfunds)
        natives = [tx for tx in block.txs if tx.value > 0 and not tx.data]
        assert natives

    def test_executes_cleanly(self, chain):
        from repro.concurrency import SerialExecutor

        wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=40))
        block = wl.block(7)
        result = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert all(r.success for r in result.tx_results)


class TestConflictRatioBlocks:
    def test_zero_ratio_has_disjoint_footprints(self, chain):
        block = conflict_ratio_block(chain, 1, 20, ratio=0.0)
        senders = [tx.sender for tx in block.txs]
        assert len(set(senders)) == len(senders)

    def test_full_ratio_all_transfer_from_one_owner(self, chain):
        from repro.contracts.abi import selector

        block = conflict_ratio_block(chain, 1, 20, ratio=1.0)
        sel = selector("transferFrom(address,address,uint256)").to_bytes(4, "big")
        assert all(tx.data[:4] == sel for tx in block.txs)
        owners = {tx.data[4:36] for tx in block.txs}
        assert len(owners) == 1

    def test_partial_ratio_counts(self, chain):
        from repro.contracts.abi import selector

        block = conflict_ratio_block(chain, 1, 20, ratio=0.5)
        sel = selector("transferFrom(address,address,uint256)").to_bytes(4, "big")
        conflicting = sum(1 for tx in block.txs if tx.data[:4] == sel)
        assert conflicting == 10

    def test_invalid_ratio_rejected(self, chain):
        with pytest.raises(ValueError):
            conflict_ratio_block(chain, 1, 10, ratio=1.5)

    def test_too_many_txs_rejected(self, chain):
        with pytest.raises(ValueError):
            conflict_ratio_block(chain, 1, 100, ratio=0.0)

    def test_conflicting_block_executes(self, chain):
        from repro.concurrency import SerialExecutor

        block = conflict_ratio_block(chain, 1, 20, ratio=1.0)
        result = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert all(r.success for r in result.tx_results)

    def test_hot_recipient_block_targets_one_address(self, chain):
        block = hot_recipient_block(chain, 1, 15)
        recipients = {tx.data[4:36] for tx in block.txs}
        assert len(recipients) == 1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_mainnet_blocks_always_have_configured_size(number):
    chain = build_chain(ChainSpec(tokens=2, amm_pairs=1, accounts=60))
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=13))
    assert len(wl.block(number)) == 13
