"""The resilience layer: fault plans, recovery policies, escalation order.

The contracts pinned here are load-bearing for the chaos harness:
determinism of the fault streams (replayability from ``(seed, config)``),
the exact backoff schedule in simulated time, the documented escalation
order (redo budget -> full re-execution -> serial fallback), and the
watchdog/typed-error behaviour of the simulated machine.
"""

from __future__ import annotations

import pytest

from repro.db.cache import LRUCache
from repro.db.kvstore import ReadSample, SimulatedDiskKV
from repro.errors import (
    AbortStormDetected,
    BlockDeadlineExceeded,
    RedoBudgetExceeded,
    ResilienceError,
    SimulationError,
    TransientStorageError,
)
from repro.resilience import (
    EscalationLadder,
    FaultConfig,
    FaultPlan,
    RecoveryPolicy,
    SCENARIOS,
    default_suite,
)
from repro.sim.machine import SimMachine, Task


class TestErrorTaxonomy:
    def test_resilience_errors_are_typed_and_narrow(self):
        for exc_type in (
            TransientStorageError,
            RedoBudgetExceeded,
            BlockDeadlineExceeded,
            AbortStormDetected,
        ):
            assert issubclass(exc_type, ResilienceError)
        err = TransientStorageError("key-7", attempts=4)
        assert err.key == "key-7" and err.attempts == 4
        assert "retry budget" in str(err)
        deadline = BlockDeadlineExceeded(120.0, 100.0)
        assert deadline.at_us == 120.0 and deadline.deadline_us == 100.0


class TestRecoveryPolicy:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RecoveryPolicy(
            backoff_base_us=50.0, backoff_factor=2.0, backoff_cap_us=300.0
        )
        assert [policy.backoff_us(a) for a in range(5)] == [
            50.0,
            100.0,
            200.0,
            300.0,  # capped
            300.0,
        ]
        with pytest.raises(ValueError):
            policy.backoff_us(-1)

    def test_retry_wait_charges_latency_plus_backoff_per_failure(self):
        policy = RecoveryPolicy(
            backoff_base_us=50.0, backoff_factor=2.0, backoff_cap_us=1600.0
        )
        # Two failed attempts: (lat + 50) + (lat + 100).
        assert policy.retry_wait_us(2, 38.0) == pytest.approx(38.0 * 2 + 150.0)
        assert policy.retry_wait_us(0, 38.0) == 0.0

    def test_abort_storm_threshold_scales_with_block_size(self):
        policy = RecoveryPolicy(abort_storm_factor=6.0, abort_storm_floor=24)
        assert policy.abort_storm_threshold(2) == 24  # floor wins
        assert policy.abort_storm_threshold(100) == 600


class TestEscalationLadder:
    def test_escalation_order_redo_then_reexec_then_serial(self):
        policy = RecoveryPolicy(redo_budget=2, reexec_budget=2)
        ladder = EscalationLadder(policy)
        # Rung 1: the redo budget is consumed attempt by attempt.
        ladder.charge_redo(5)
        ladder.charge_redo(5)
        assert not ladder.wants_serial(5)
        with pytest.raises(RedoBudgetExceeded) as excinfo:
            ladder.charge_redo(5)
        assert excinfo.value.tx_index == 5
        assert ladder.redo_budget_escalations == 1
        # Rung 2: full re-executions accumulate toward the serial fallback.
        ladder.record_reexecution(5)
        assert not ladder.wants_serial(5)
        ladder.record_reexecution(5)
        assert ladder.wants_serial(5)
        # Rung 3 is the caller's move; the ladder just counts it.
        ladder.note_serial_fallback(5)
        stats = ladder.as_stats()
        assert stats["redo_budget_escalations"] == 1
        assert stats["serial_tx_fallbacks"] == 1
        # Budgets are per-transaction: tx 6 starts fresh.
        ladder.charge_redo(6)
        assert not ladder.wants_serial(6)


class TestFaultPlanDeterminism:
    def test_same_seed_and_config_make_identical_decisions(self):
        config = FaultConfig(
            worker_stall_rate=0.3,
            worker_crash_rate=0.1,
            storage_spike_rate=0.4,
            cache_drop_rate=0.2,
        )
        draws = []
        for _ in range(2):
            plan = FaultPlan("seed-1", config)
            sample = ReadSample("v", 38.0, False)
            draws.append(
                (
                    [plan.machine.perturb_us(100.0) for _ in range(50)],
                    [plan.storage.drop_cache(k) for k in range(50)],
                    [plan.storage.on_read(k, sample).latency_us for k in range(50)],
                    dict(plan.counters),
                )
            )
        assert draws[0] == draws[1]

    def test_different_seeds_diverge(self):
        config = FaultConfig(worker_stall_rate=0.5)
        a = FaultPlan("seed-a", config)
        b = FaultPlan("seed-b", config)
        assert [a.machine.perturb_us(10.0) for _ in range(64)] != [
            b.machine.perturb_us(10.0) for _ in range(64)
        ]

    def test_sites_draw_from_independent_streams(self):
        # Draining one site's stream must not shift another's decisions.
        config = FaultConfig(worker_stall_rate=0.5, reconflict_rate=0.5)
        plain = FaultPlan(3, config)
        expected = [plain.redo.force_reconflict(i) for i in range(32)]
        interleaved = FaultPlan(3, config)
        for _ in range(100):
            interleaved.machine.perturb_us(5.0)
        assert [interleaved.redo.force_reconflict(i) for i in range(32)] == expected

    def test_zero_rate_config_is_inert(self):
        plan = FaultPlan(0, FaultConfig())
        assert not plan.config.any_enabled()
        sample = ReadSample(1, 38.0, False)
        assert plan.machine.perturb_us(100.0) == 0.0
        assert plan.storage.drop_cache("k") is False
        assert plan.storage.on_read("k", sample) is sample
        assert plan.redo.force_reconflict(0) is False
        assert plan.redo.corrupt_guard(0) is False
        assert plan.scheduler.force_abort(0, 0) is False
        assert plan.counters == {}
        assert plan.faults_injected == 0


class TestStorageFaultInjector:
    def test_transient_failures_become_simulated_latency(self):
        policy = RecoveryPolicy(
            backoff_base_us=50.0,
            backoff_factor=2.0,
            backoff_cap_us=1600.0,
            max_read_attempts=10,
        )
        plan = FaultPlan(
            1, FaultConfig(storage_fail_rate=1.0, storage_fail_streak=1), policy
        )
        sample = plan.storage.on_read("k", ReadSample(7, 38.0, False))
        # Exactly one failed attempt: original latency + (latency + backoff 0).
        assert sample.latency_us == pytest.approx(38.0 + 38.0 + 50.0)
        assert sample.value == 7  # the value is never corrupted
        assert plan.counters["storage_transient_faults"] == 1
        assert plan.counters["storage_retries"] == 1

    def test_exhausted_retry_budget_raises_typed_error(self):
        policy = RecoveryPolicy(max_read_attempts=1)
        plan = FaultPlan(
            1, FaultConfig(storage_fail_rate=1.0, storage_fail_streak=1), policy
        )
        with pytest.raises(TransientStorageError):
            plan.storage.on_read("hot-key", ReadSample(7, 38.0, False))
        assert plan.counters["storage_hard_failures"] == 1

    def test_spike_multiplies_latency(self):
        plan = FaultPlan(
            5, FaultConfig(storage_spike_rate=1.0, storage_spike_factor=10.0)
        )
        sample = plan.storage.on_read("k", ReadSample(7, 38.0, False))
        assert sample.latency_us == pytest.approx(380.0)

    def test_kvstore_injection_costs_time_not_values(self):
        db = SimulatedDiskKV(disk_latency_us=38.0)
        db.write("a", 123)
        baseline = db.read("a")  # cached after the first read
        db.faults = FaultPlan(
            2, FaultConfig(cache_drop_rate=1.0, storage_spike_rate=1.0)
        ).storage
        faulted = db.read("a")
        assert faulted.value == baseline.value == 123
        assert faulted.cache_hit is False  # the drop forced a cold re-read
        assert faulted.latency_us > baseline.latency_us
        db.faults = None
        assert db.read("a").cache_hit is True


class TestMachineFaults:
    def test_lru_drop_evicts_one_entry(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.drop("a") is True
        assert cache.drop("a") is False
        assert "a" not in cache and "b" in cache

    def test_deadline_watchdog_raises(self):
        class OneLongTask:
            def __init__(self):
                self.given = False

            def next_task(self, worker_id, now_us):
                if self.given:
                    return None
                self.given = True
                return Task(kind="execute", duration_us=500.0)

            def on_complete(self, task, now_us):
                pass

            def done(self):
                return self.given

        with pytest.raises(BlockDeadlineExceeded) as excinfo:
            SimMachine(2, deadline_us=100.0).run(OneLongTask())
        assert excinfo.value.at_us == pytest.approx(500.0)
        # Within the deadline the same run completes normally.
        assert SimMachine(2, deadline_us=1000.0).run(OneLongTask()) == 500.0

    def test_fault_plan_perturbs_makespan_deterministically(self):
        class Burst:
            def __init__(self, n=20):
                self.todo = list(range(n))
                self.done_count = 0
                self.n = n

            def next_task(self, worker_id, now_us):
                if not self.todo:
                    return None
                self.todo.pop()
                return Task(kind="execute", duration_us=10.0)

            def on_complete(self, task, now_us):
                self.done_count += 1

            def done(self):
                return self.done_count == self.n

        clean = SimMachine(4).run(Burst())
        config = FaultConfig(worker_stall_rate=0.5, worker_stall_us=100.0)
        faulted = [
            SimMachine(4, fault_plan=FaultPlan(9, config)).run(Burst())
            for _ in range(2)
        ]
        assert faulted[0] == faulted[1]  # same seed, same makespan
        assert faulted[0] > clean

    def test_invalid_durations_rejected_with_clear_error(self):
        class Bad:
            def next_task(self, worker_id, now_us):
                return Task(kind="execute", duration_us=float("nan"))

            def on_complete(self, task, now_us):
                pass

            def done(self):
                return False

        with pytest.raises(SimulationError, match="invalid duration"):
            SimMachine(1).run(Bad())
        with pytest.raises(SimulationError, match="positive"):
            SimMachine(1, deadline_us=0.0)
        with pytest.raises(SimulationError, match="worker count"):
            SimMachine(0)


class TestScenarioCatalogue:
    def test_catalogue_is_well_formed(self):
        suite = default_suite()
        assert len(suite) == len(SCENARIOS) >= 8
        kinds = {scenario.kind for scenario in suite}
        assert {"faults", "crash", "reorg"} <= kinds
        for scenario in suite:
            if scenario.kind == "faults":
                assert scenario.config.any_enabled(), scenario.name
            else:
                # Durability scenarios inject process death / reorgs in the
                # commit pipeline, never through the fault injector.
                assert not scenario.config.any_enabled(), scenario.name
            assert scenario.description
            # Overrides must name real RecoveryPolicy fields.
            for field_name in scenario.recovery_overrides:
                assert hasattr(RecoveryPolicy(), field_name)
