"""Redo-phase edge cases, each driven by a purpose-built assembly program."""

from __future__ import annotations

from repro.core.redo import redo
from repro.core.tracer import SSATracer
from repro.crypto import keccak256
from repro.evm.assembler import assemble
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import make_address
from repro.state import StateView, WorldState
from repro.state.keys import balance_key, storage_key

CONTRACT = make_address(0xED9E)
SENDER = make_address(0x5E4D)
ETHER = 10**18


def trace(source: str, storage: dict[int, int] | None = None):
    world = WorldState()
    world.set_code(CONTRACT, assemble(source))
    world.set_balance(SENDER, 10 * ETHER)
    for slot, value in (storage or {}).items():
        world.set_storage(CONTRACT, slot, value)
    tracer = SSATracer()
    view = StateView(world)
    tx = Transaction(sender=SENDER, to=CONTRACT, gas_limit=500_000)
    result = execute_transaction(view, tx, BlockEnv(), tracer=tracer)
    assert result.success, result.error
    return tracer.log, result, world


def key(slot: int):
    return storage_key(CONTRACT, slot)


class TestBlindWriteGasRecheck:
    """An SSTORE whose *slot* conflicts changes price even when its value
    doesn't — redo() re-derives the cost for writes on conflicting keys
    that the DFS never reaches."""

    SRC = "PUSH 5 PUSH 1 SSTORE STOP"  # blind constant write to slot 1

    def test_zeroness_flip_aborts(self):
        log, _, _ = trace(self.SRC, storage={1: 0})  # priced as 0 -> 5 (SET)
        outcome = redo(log, {key(1): 7})  # now 7 -> 5 (RESET): cheaper
        assert not outcome.success
        assert "gas-flow" in outcome.reason

    def test_same_zeroness_passes(self):
        log, _, _ = trace(self.SRC, storage={1: 3})  # priced as RESET
        outcome = redo(log, {key(1): 9})  # still RESET
        assert outcome.success
        # The write itself was constant: nothing re-executed, value kept.
        assert outcome.updated_writes == {}


class TestExpGasGuard:
    # result = 2 ** storage[1]; stored to slot 2.
    SRC = "PUSH 1 SLOAD PUSH 2 EXP PUSH 2 SSTORE STOP"

    def test_same_exponent_width_redoes(self):
        log, _, _ = trace(self.SRC, storage={1: 200, 2: 1})
        outcome = redo(log, {key(1): 201})
        assert outcome.success, outcome.reason
        assert outcome.updated_writes[key(2)] == 2**201

    def test_wider_exponent_violates_gas_flow(self):
        log, _, _ = trace(self.SRC, storage={1: 200, 2: 1})
        outcome = redo(log, {key(1): 300})  # 1-byte -> 2-byte exponent
        assert not outcome.success
        assert "EXP" in outcome.reason


class TestMemoryMediatedChains:
    def test_mload_chain(self):
        # slot2 = mem roundtrip of slot1's value.
        src = (
            "PUSH 1 SLOAD PUSH 64 MSTORE "
            "PUSH 64 MLOAD PUSH 2 SSTORE STOP"
        )
        log, _, _ = trace(src, storage={1: 42, 2: 1})
        outcome = redo(log, {key(1): 99})
        assert outcome.success
        assert outcome.updated_writes[key(2)] == 99

    def test_sha3_chain(self):
        # slot2 = keccak(pad32(slot1)).
        src = (
            "PUSH 1 SLOAD PUSH0 MSTORE "
            "PUSH 32 PUSH0 SHA3 PUSH 2 SSTORE STOP"
        )
        log, _, _ = trace(src, storage={1: 42, 2: 1})
        outcome = redo(log, {key(1): 99})
        assert outcome.success
        expected = int.from_bytes(keccak256((99).to_bytes(32, "big")), "big")
        assert outcome.updated_writes[key(2)] == expected

    def test_partial_memory_overlay(self):
        # A constant MSTORE8 overwrites one byte of the loaded word before
        # the MLOAD: the redo must patch only the dependent bytes.
        src = (
            "PUSH 1 SLOAD PUSH0 MSTORE "
            "PUSH 0xAA PUSH0 MSTORE8 "  # byte 0 becomes constant 0xAA
            "PUSH0 MLOAD PUSH 2 SSTORE STOP"
        )
        log, _, _ = trace(src, storage={1: 42, 2: 1})
        outcome = redo(log, {key(1): 99})
        assert outcome.success
        expected = int.from_bytes(
            b"\xaa" + (99).to_bytes(32, "big")[1:], "big"
        )
        assert outcome.updated_writes[key(2)] == expected


class TestTypeIIChains:
    def test_read_own_write_chain(self):
        # slot1 += 1 twice, via a type-II SLOAD in between.
        src = (
            "PUSH 1 SLOAD PUSH 1 ADD PUSH 1 SSTORE "
            "PUSH 1 SLOAD PUSH 1 ADD PUSH 1 SSTORE STOP"
        )
        log, _, _ = trace(src, storage={1: 10})
        # Exactly one type-I (direct) read of slot 1.
        assert len(log.direct_reads[key(1)]) == 1
        outcome = redo(log, {key(1): 100})
        assert outcome.success
        assert outcome.updated_writes[key(1)] == 102

    def test_final_write_wins_in_updated_writes(self):
        src = (
            "PUSH 1 SLOAD PUSH 2 MUL PUSH 3 SSTORE "  # slot3 = 2 * slot1
            "PUSH 1 SLOAD PUSH 3 MUL PUSH 3 SSTORE "  # slot3 = 3 * slot1
            "STOP"
        )
        log, _, _ = trace(src, storage={1: 5, 3: 1})
        outcome = redo(log, {key(1): 7})
        assert outcome.success
        assert outcome.updated_writes[key(3)] == 21  # the LAST write's value


class TestControlFlowGuards:
    # Branch on whether slot1 < 10: different SSTORE on each path.
    SRC = """
        PUSH 1 SLOAD PUSH 10 SWAP1 LT
        PUSH @small JUMPI
        PUSH 111 PUSH 2 SSTORE STOP
    small:
        JUMPDEST
        PUSH 222 PUSH 2 SSTORE STOP
    """

    def test_same_branch_redoes(self):
        log, _, _ = trace(self.SRC, storage={1: 3, 2: 1})  # took `small`
        outcome = redo(log, {key(1): 4})  # still < 10
        assert outcome.success

    def test_branch_flip_aborts(self):
        log, _, _ = trace(self.SRC, storage={1: 3, 2: 1})
        outcome = redo(log, {key(1): 50})  # now >= 10: other path
        assert not outcome.success
        assert "ASSERT_EQ" in outcome.reason


class TestPoisonedLog:
    """A failed redo leaves entry results partially patched; the log must
    refuse every later attempt instead of replaying incoherent state."""

    SRC = TestControlFlowGuards.SRC

    def test_failed_redo_poisons_the_log(self):
        log, _, _ = trace(self.SRC, storage={1: 3, 2: 1})
        assert not redo(log, {key(1): 50}).success  # branch flip
        assert log.poisoned

    def test_poisoned_log_refuses_benign_conflicts(self):
        log, _, _ = trace(self.SRC, storage={1: 3, 2: 1})
        assert redo(log, {key(1): 4}).success  # sanity: benign on fresh log
        log2, _, _ = trace(self.SRC, storage={1: 3, 2: 1})
        assert not redo(log2, {key(1): 50}).success
        outcome = redo(log2, {key(1): 4})
        assert not outcome.success
        assert "poisoned" in outcome.reason


class TestReturnDataRedo:
    """The top-level RETURN buffer is part of the receipt: when it depends
    on conflicting storage, the redo must rewrite it (the AMM ``swap``
    amountOut bug found by the repro.check harness)."""

    SRC = "PUSH 1 SLOAD PUSH0 MSTORE PUSH 32 PUSH0 RETURN"

    def test_storage_dependent_return_is_repatched(self):
        log, result, _ = trace(self.SRC, storage={1: 42})
        assert result.return_data == (42).to_bytes(32, "big")
        outcome = redo(log, {key(1): 99})
        assert outcome.success, outcome.reason
        assert outcome.updated_return_data == (99).to_bytes(32, "big")

    def test_constant_return_carries_no_update(self):
        src = (
            "PUSH 1 SLOAD PUSH 2 SSTORE "
            "PUSH 7 PUSH0 MSTORE PUSH 32 PUSH0 RETURN"
        )
        log, result, _ = trace(src, storage={1: 5, 2: 1})
        assert result.return_data == (7).to_bytes(32, "big")
        outcome = redo(log, {key(1): 9})
        assert outcome.success
        assert outcome.updated_return_data is None
        assert outcome.updated_writes[key(2)] == 9


class TestBurnIntrinsicTracing:
    """A value burn (to=None) must trace its deduction as an intrinsic RMW:
    an untraced write would let a redo of the fee chain silently resurrect
    the burned amount (found by the repro.check harness)."""

    def test_burn_redo_preserves_the_burn(self):
        world = WorldState()
        world.set_balance(SENDER, 10 * ETHER)
        tracer = SSATracer()
        view = StateView(world)
        tx = Transaction(sender=SENDER, to=None, value=ETHER, gas_limit=21_000)
        result = execute_transaction(view, tx, BlockEnv(), tracer=tracer)
        assert result.success, result.error
        fee = result.gas_used * tx.gas_price
        bkey = balance_key(SENDER)
        assert result.write_set[bkey] == 10 * ETHER - ETHER - fee
        # The committed balance was actually 12 ETHER when this speculation
        # validated: the corrected final balance must still lack the burn.
        outcome = redo(tracer.log, {bkey: 12 * ETHER})
        assert outcome.success, outcome.reason
        assert outcome.updated_writes[bkey] == 12 * ETHER - ETHER - fee


class TestDataFlowGuards:
    def test_storage_derived_slot_address_is_guarded(self):
        # SSTORE whose *target slot* comes from storage.
        src = "PUSH 7 PUSH 1 SLOAD SSTORE STOP"  # storage[storage[1]] = 7
        log, _, _ = trace(src, storage={1: 5})
        # Unchanged address: fine.
        assert redo(log, {key(1): 5}).success
        log2, _, _ = trace(src, storage={1: 5})
        outcome = redo(log2, {key(1): 6})  # the write would move!
        assert not outcome.success

    def test_storage_derived_memory_offset_is_guarded(self):
        src = "PUSH 42 PUSH 1 SLOAD MSTORE STOP"  # mem[storage[1]] = 42
        log, _, _ = trace(src, storage={1: 64})
        outcome = redo(log, {key(1): 96})
        assert not outcome.success
