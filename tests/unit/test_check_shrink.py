"""ddmin block shrinking against synthetic failure predicates."""

from __future__ import annotations

import pytest

from repro.check import shrink_block
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import make_address
from repro.workloads import Block

SENDER = make_address(0x51)


def block_of(values: list[int]) -> Block:
    txs = [
        Transaction(
            sender=SENDER,
            to=make_address(0x52),
            value=value,
            gas_limit=21_000,
            nonce=i,
        )
        for i, value in enumerate(values)
    ]
    return Block(number=1, txs=txs, env=BlockEnv())


def values_of(block: Block) -> list[int]:
    return [tx.value for tx in block.txs]


class TestShrinkBlock:
    def test_shrinks_to_the_failure_pair(self):
        block = block_of(list(range(20)))
        result = shrink_block(
            block, lambda b: {7, 13} <= set(values_of(b))
        )
        assert sorted(values_of(result.block)) == [7, 13]
        assert result.original_tx_count == 20
        assert result.attempts > 0

    def test_result_is_one_minimal(self):
        block = block_of(list(range(16)))
        predicate = lambda b: len(set(values_of(b)) & {2, 5, 11}) >= 2
        result = shrink_block(block, predicate)
        final = values_of(result.block)
        assert predicate(result.block)
        for i in range(len(final)):
            candidate = block_of(final[:i] + final[i + 1 :])
            assert not predicate(candidate)

    def test_single_tx_failure(self):
        block = block_of(list(range(10)))
        result = shrink_block(block, lambda b: 4 in values_of(b))
        assert values_of(result.block) == [4]

    def test_passing_block_raises(self):
        with pytest.raises(ValueError):
            shrink_block(block_of([1, 2, 3]), lambda b: False)

    def test_original_block_not_renumbered(self):
        block = block_of(list(range(8)))
        shrink_block(block, lambda b: 3 in values_of(b))
        assert [tx.tx_index for tx in block.txs] == list(range(8))

    def test_attempt_budget_is_respected(self):
        block = block_of(list(range(12)))
        result = shrink_block(
            block, lambda b: {1, 6, 10} <= set(values_of(b)), max_attempts=5
        )
        assert result.attempts <= 5
        # Whatever was reached still fails — never a passing "minimum".
        assert {1, 6, 10} <= set(values_of(result.block))
