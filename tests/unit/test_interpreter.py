"""Interpreter semantics: ALU table, control flow, memory, storage, env.

Programs are written in assembly, installed as contract code, and invoked
through the full transaction envelope; results come back via RETURN.
"""

from __future__ import annotations

import pytest

from repro.contracts.abi import encode_call
from repro.evm import gas as G
from repro.evm.assembler import assemble
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import UINT_MAX, from_signed, make_address
from repro.state import StateView, WorldState
from repro.state.keys import storage_key

CONTRACT = make_address(0xCA11)
SENDER = make_address(0x5E4D)
ETHER = 10**18


def run_code(source: str, storage: dict[int, int] | None = None, value: int = 0,
             data: bytes = b"", gas_limit: int = 500_000):
    """Assemble, install, execute; returns (TxResult, view)."""
    world = WorldState()
    world.set_code(CONTRACT, assemble(source))
    world.set_balance(SENDER, 10 * ETHER)
    for slot, val in (storage or {}).items():
        world.set_storage(CONTRACT, slot, val)
    view = StateView(world)
    tx = Transaction(
        sender=SENDER, to=CONTRACT, value=value, data=data, gas_limit=gas_limit
    )
    result = execute_transaction(view, tx, BlockEnv())
    return result, view


def returned_word(source: str, **kwargs) -> int:
    result, _ = run_code(source, **kwargs)
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


RETURN_TOP = "PUSH0 MSTORE PUSH 32 PUSH0 RETURN"


# (source expression, expected) — each exercises one ALU opcode end to end.
ALU_CASES = [
    ("PUSH 3 PUSH 4 ADD", 7),
    ("PUSH 3 PUSH 4 MUL", 12),
    ("PUSH 3 PUSH 10 SUB", 7),  # SUB pops top first: 10 - 3
    ("PUSH 3 PUSH 10 DIV", 3),
    ("PUSH 0 PUSH 10 DIV", 0),
    ("PUSH 3 PUSH 10 MOD", 1),
    (f"PUSH 2 PUSH {from_signed(-7)} SDIV", from_signed(-3)),
    (f"PUSH 2 PUSH {from_signed(-7)} SMOD", from_signed(-1)),
    ("PUSH 5 PUSH 4 PUSH 3 ADDMOD", 2),  # (3 + 4) % 5
    ("PUSH 5 PUSH 4 PUSH 3 MULMOD", 2),  # (3 * 4) % 5
    ("PUSH 5 PUSH 3 EXP", 243),  # 3 ** 5
    ("PUSH 0xFF PUSH 0 SIGNEXTEND", UINT_MAX),
    ("PUSH 10 PUSH 3 LT", 1),
    ("PUSH 3 PUSH 10 GT", 1),
    (f"PUSH 0 PUSH {from_signed(-1)} SLT", 1),
    (f"PUSH {from_signed(-1)} PUSH 0 SGT", 1),
    ("PUSH 7 PUSH 7 EQ", 1),
    ("PUSH 7 PUSH 8 EQ", 0),
    ("PUSH 0 ISZERO", 1),
    ("PUSH 9 ISZERO", 0),
    ("PUSH 0x0F PUSH 0x3C AND", 0x0C),
    ("PUSH 0x0F PUSH 0x30 OR", 0x3F),
    ("PUSH 0x0F PUSH 0x3C XOR", 0x33),
    ("PUSH 0 NOT", UINT_MAX),
    ("PUSH 0xAB PUSH 31 BYTE", 0xAB),
    ("PUSH 1 PUSH 2 SHL", 4),  # 1 << 2... SHL pops shift first
    ("PUSH 4 PUSH 1 SHR", 2),
    (f"PUSH {from_signed(-4)} PUSH 1 SAR", from_signed(-2)),
]


@pytest.mark.parametrize("source,expected", ALU_CASES)
def test_alu_opcode(source, expected):
    assert returned_word(f"{source} {RETURN_TOP}") == expected


class TestStackOps:
    def test_pop_discards(self):
        assert returned_word(f"PUSH 1 PUSH 99 POP {RETURN_TOP}") == 1

    def test_dup(self):
        assert returned_word(f"PUSH 5 DUP1 ADD {RETURN_TOP}") == 10

    def test_swap(self):
        # 10 - 3 vs 3 - 10: SWAP1 flips the operands.
        assert returned_word(f"PUSH 10 PUSH 3 SWAP1 SUB {RETURN_TOP}") == 7

    def test_deep_dup_swap(self):
        src = "PUSH 1 PUSH 2 PUSH 3 PUSH 4 DUP4 " + RETURN_TOP
        assert returned_word(src) == 1

    def test_stack_underflow_fails_tx(self):
        result, _ = run_code("POP STOP")
        assert not result.success


class TestControlFlow:
    def test_jump(self):
        src = """
        PUSH @skip JUMP
        PUSH 1 PUSH0 MSTORE      ; skipped
        skip:
        JUMPDEST
        PUSH 42
        """ + RETURN_TOP
        assert returned_word(src) == 42

    def test_jumpi_taken(self):
        src = f"PUSH 1 PUSH @yes JUMPI PUSH 0 {RETURN_TOP} yes: JUMPDEST PUSH 7 {RETURN_TOP}"
        assert returned_word(src) == 7

    def test_jumpi_not_taken(self):
        src = f"PUSH 0 PUSH @yes JUMPI PUSH 3 {RETURN_TOP} yes: JUMPDEST PUSH 7 {RETURN_TOP}"
        assert returned_word(src) == 3

    def test_jump_to_non_jumpdest_fails(self):
        result, _ = run_code("PUSH 1 JUMP")
        assert not result.success

    def test_jump_into_push_immediate_fails(self):
        # Byte 1 is the 0x5B immediate of PUSH1, not a real JUMPDEST.
        result, _ = run_code("PUSH1 0x5b PUSH 1 JUMP")
        assert not result.success

    def test_jumpi_untaken_ignores_bad_dest(self):
        src = f"PUSH 0 PUSH 9999 JUMPI PUSH 5 {RETURN_TOP}"
        assert returned_word(src) == 5

    def test_implicit_stop_at_code_end(self):
        result, _ = run_code("PUSH 1")
        assert result.success
        assert result.return_data == b""

    def test_revert_returns_data_and_fails(self):
        result, _ = run_code("PUSH 42 PUSH0 MSTORE PUSH 32 PUSH0 REVERT")
        assert not result.success
        assert int.from_bytes(result.return_data, "big") == 42

    def test_invalid_opcode_fails(self):
        result, _ = run_code("INVALID")
        assert not result.success

    def test_out_of_gas(self):
        result, _ = run_code(
            "loop: JUMPDEST PUSH @loop JUMP", gas_limit=25_000
        )
        assert not result.success
        assert result.gas_used == 25_000


class TestMemoryOps:
    def test_mstore_mload(self):
        assert returned_word(f"PUSH 123 PUSH 64 MSTORE PUSH 64 MLOAD {RETURN_TOP}") == 123

    def test_mstore8(self):
        # Store one byte at offset 31 -> word value 0xAB.
        assert returned_word(f"PUSH 0xAB PUSH 31 MSTORE8 PUSH0 MLOAD {RETURN_TOP}") == 0xAB

    def test_mstore8_masks_to_byte(self):
        assert returned_word(f"PUSH 0x1FF PUSH 31 MSTORE8 PUSH0 MLOAD {RETURN_TOP}") == 0xFF

    def test_overlapping_writes(self):
        # MSTORE 32 bytes at 0, then MSTORE8 at 0: the first byte changes.
        src = f"""
        PUSH 0x11 PUSH0 MSTORE8
        PUSH0 MLOAD
        """ + RETURN_TOP
        assert returned_word(src) == 0x11 << 248

    def test_msize(self):
        assert returned_word(f"PUSH 1 PUSH 100 MSTORE MSIZE {RETURN_TOP}") == 160

    def test_sha3(self):
        from repro.crypto import keccak256

        expected = int.from_bytes(keccak256(b"\x00" * 32), "big")
        assert returned_word(f"PUSH 32 PUSH0 SHA3 {RETURN_TOP}") == expected

    def test_mload_of_fresh_memory_is_zero(self):
        assert returned_word(f"PUSH 1000 MLOAD {RETURN_TOP}") == 0


class TestCalldata:
    def test_calldataload(self):
        data = (99).to_bytes(32, "big")
        assert returned_word(
            f"PUSH0 CALLDATALOAD {RETURN_TOP}", data=data
        ) == 99

    def test_calldataload_past_end_zero_pads(self):
        assert returned_word(
            f"PUSH 1 CALLDATALOAD {RETURN_TOP}", data=b"\xff"
        ) == 0

    def test_calldatasize(self):
        assert returned_word(f"CALLDATASIZE {RETURN_TOP}", data=b"abc") == 3

    def test_calldatacopy(self):
        src = f"PUSH 3 PUSH0 PUSH0 CALLDATACOPY PUSH0 MLOAD {RETURN_TOP}"
        expected = int.from_bytes(b"abc".ljust(32, b"\x00"), "big")
        assert returned_word(src, data=b"abc") == expected


class TestStorageOps:
    def test_sload_committed(self):
        assert returned_word(
            f"PUSH 7 SLOAD {RETURN_TOP}", storage={7: 777}
        ) == 777

    def test_sstore_then_sload(self):
        assert returned_word(
            f"PUSH 55 PUSH 7 SSTORE PUSH 7 SLOAD {RETURN_TOP}"
        ) == 55

    def test_sstore_lands_in_write_set(self):
        result, _ = run_code("PUSH 55 PUSH 7 SSTORE STOP")
        assert result.write_set[storage_key(CONTRACT, 7)] == 55

    def test_sload_lands_in_read_set(self):
        result, _ = run_code("PUSH 7 SLOAD POP STOP", storage={7: 3})
        assert result.read_set[storage_key(CONTRACT, 7)] == 3

    def test_cold_warm_sload_gas(self):
        cold, _ = run_code("PUSH 7 SLOAD POP STOP")
        warm, _ = run_code("PUSH 7 SLOAD POP PUSH 7 SLOAD POP STOP")
        extra = warm.gas_used - cold.gas_used
        # Second SLOAD is warm: 100 + PUSH(3) + POP(2).
        assert extra == G.GAS_SLOAD_WARM + 3 + 2

    def test_balance_opcode(self):
        src = f"PUSH {int.from_bytes(SENDER, 'big')} BALANCE {RETURN_TOP}"
        result, _ = run_code(src)
        assert result.success
        # The sender prepaid its full gas allowance is NOT deducted upfront
        # in this model; only the final fee is.  During execution the
        # balance is the genesis balance (value transfers happened first).
        assert int.from_bytes(result.return_data, "big") == 10 * ETHER

    def test_selfbalance(self):
        result, _ = run_code(f"SELFBALANCE {RETURN_TOP}", value=123)
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 123


class TestEnvOps:
    def test_address_caller_origin(self):
        assert returned_word(f"ADDRESS {RETURN_TOP}") == int.from_bytes(CONTRACT, "big")
        assert returned_word(f"CALLER {RETURN_TOP}") == int.from_bytes(SENDER, "big")
        assert returned_word(f"ORIGIN {RETURN_TOP}") == int.from_bytes(SENDER, "big")

    def test_callvalue(self):
        assert returned_word(f"CALLVALUE {RETURN_TOP}", value=5) == 5

    def test_block_context(self):
        env = BlockEnv()
        assert returned_word(f"NUMBER {RETURN_TOP}") == env.number
        assert returned_word(f"TIMESTAMP {RETURN_TOP}") == env.timestamp
        assert returned_word(f"CHAINID {RETURN_TOP}") == env.chain_id
        assert returned_word(f"GASLIMIT {RETURN_TOP}") == env.gas_limit

    def test_codesize(self):
        src = f"CODESIZE {RETURN_TOP}"
        assert returned_word(src) == len(assemble(src))

    def test_gasprice(self):
        assert returned_word(f"GASPRICE {RETURN_TOP}") == 1

    def test_pc(self):
        assert returned_word(f"PC {RETURN_TOP}") == 0
        assert returned_word(f"STOP" if False else f"JUMPDEST PC {RETURN_TOP}") == 1

    def test_gas_decreases(self):
        remaining = returned_word(f"GAS {RETURN_TOP}")
        assert 0 < remaining < 500_000


class TestLogs:
    def test_log0(self):
        result, _ = run_code("PUSH 42 PUSH0 MSTORE PUSH 32 PUSH0 LOG0 STOP")
        assert len(result.logs) == 1
        assert result.logs[0].address == CONTRACT
        assert result.logs[0].topics == ()
        assert int.from_bytes(result.logs[0].data, "big") == 42

    def test_log3_topic_order(self):
        result, _ = run_code(
            "PUSH 3 PUSH 2 PUSH 1 PUSH0 PUSH0 LOG3 STOP"
        )
        assert result.logs[0].topics == (1, 2, 3)

    def test_reverted_logs_still_recorded_but_tx_failed(self):
        result, _ = run_code(
            "PUSH 1 PUSH0 PUSH0 LOG1 PUSH0 PUSH0 REVERT"
        )
        assert not result.success
