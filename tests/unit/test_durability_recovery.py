"""Checkpoint/recovery and reorg rollback over synthetic journals."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.durability import (
    BeginRecord,
    CommitRecord,
    DurableCommitPipeline,
    MemoryMedium,
    ReorgManager,
    SealRecord,
    SettleRecord,
    TxWriteRecord,
    UndoRecord,
    WriteAheadJournal,
    decode_snapshot,
    delta_digest,
    encode_snapshot,
    latest_valid_snapshot,
    recover,
)
from repro.durability.checkpoint import restore_snapshot
from repro.errors import JournalCorruptionError, RecoveryError, ReorgDepthExceeded
from repro.obs import MetricsRegistry
from repro.primitives import make_address
from repro.resilience.policy import RecoveryPolicy
from repro.state.keys import balance_key
from repro.state.world import WorldState


def k(i: int):
    return balance_key(make_address(20_000 + i))


# A minimal stand-in for concurrency.base.BlockResult: the commit pipeline
# only touches ``writes`` and ``tx_results[i].{tx.tx_index, write_set}``.


@dataclass
class FakeTx:
    tx_index: int


@dataclass
class FakeTxResult:
    tx: FakeTx
    write_set: dict


@dataclass
class FakeBlockResult:
    writes: dict
    tx_results: list = field(default_factory=list)


def make_result(*tx_writes: dict) -> FakeBlockResult:
    merged: dict = {}
    tx_results = []
    for index, writes in enumerate(tx_writes):
        merged.update(writes)
        tx_results.append(FakeTxResult(FakeTx(index), dict(writes)))
    return FakeBlockResult(merged, tx_results)


def commit_chain(pipeline: DurableCommitPipeline, world: WorldState, blocks):
    """Commit ``{number: result}`` in order; returns post-block fingerprints."""
    fingerprints = {}
    for number, result in blocks:
        pipeline.commit(world, number, result)
        fingerprints[number] = world.fingerprint()
    return fingerprints


class TestSnapshots:
    def test_encode_decode_restore_round_trip(self):
        world = WorldState()
        world.apply({k(1): 100, k(2): 7})
        number, fingerprint, items = decode_snapshot(encode_snapshot(world, 9))
        assert number == 9
        assert fingerprint == world.fingerprint()
        assert restore_snapshot(items).fingerprint() == world.fingerprint()

    def test_corrupt_snapshot_is_a_typed_error(self):
        world = WorldState()
        world.apply({k(1): 100})
        blob = bytearray(encode_snapshot(world, 1))
        blob[-1] ^= 0xFF
        with pytest.raises(JournalCorruptionError):
            decode_snapshot(bytes(blob))

    def test_latest_valid_snapshot_skips_corrupt_newest(self):
        medium = MemoryMedium()
        old = WorldState()
        old.apply({k(1): 100})
        medium.write_snapshot(1, encode_snapshot(old, 1))
        new = WorldState()
        new.apply({k(1): 100, k(2): 50})
        torn = encode_snapshot(new, 2)
        medium.write_snapshot(2, torn[: len(torn) // 2])

        metrics = MetricsRegistry()
        snapshot = latest_valid_snapshot(medium, metrics=metrics)
        assert snapshot is not None
        number, world = snapshot
        assert number == 1
        assert world.fingerprint() == old.fingerprint()
        assert metrics.value("durability_snapshots_rejected") == 1

    def test_all_snapshots_invalid_means_none(self):
        medium = MemoryMedium()
        medium.write_snapshot(3, b"garbage")
        assert latest_valid_snapshot(medium) is None


class TestRecover:
    def test_empty_medium_recovers_to_genesis(self):
        result = recover(MemoryMedium(), WorldState)
        assert result.last_committed_block is None
        assert result.blocks_replayed == 0
        assert result.world.fingerprint() == WorldState().fingerprint()

    def test_commit_then_recover_round_trip(self):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium)
        world = WorldState()
        fps = commit_chain(
            pipeline,
            world,
            [
                (1, make_result({k(1): 10}, {k(2): 20})),
                (2, make_result({k(1): 15, k(3): 5})),
            ],
        )
        result = recover(medium, WorldState)
        assert result.last_committed_block == 2
        assert result.blocks_replayed == 2
        assert result.world.fingerprint() == fps[2]
        assert result.truncated_bytes == 0
        assert not result.corrupt_truncated

    def test_recovery_starts_from_the_snapshot(self):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium, checkpoint_interval=2)
        world = WorldState()
        fps = commit_chain(
            pipeline,
            world,
            [
                (1, make_result({k(1): 10})),
                (2, make_result({k(2): 20})),  # checkpoint fires here
                (3, make_result({k(3): 30})),
            ],
        )
        result = recover(medium, WorldState)
        assert result.snapshot_block == 2
        assert result.blocks_replayed == 1  # only block 3 replays
        assert result.last_committed_block == 3
        assert result.world.fingerprint() == fps[3]

    def test_unterminated_tail_block_is_discarded(self):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium)
        world = WorldState()
        fps = commit_chain(pipeline, world, [(1, make_result({k(1): 10}))])
        # A half-journaled block 2: BEGIN + one TXWRITE, no COMMIT.
        pipeline.journal.append(BeginRecord(2, 1, world.fingerprint()))
        pipeline.journal.append(TxWriteRecord(2, 0, {k(2): 99}))

        result = recover(medium, WorldState)
        assert result.discarded_blocks == 1
        assert result.truncated_bytes > 0
        assert result.last_committed_block == 1
        assert result.world.fingerprint() == fps[1]
        # The journal left behind is a clean committed prefix again.
        assert recover(medium, WorldState).discarded_blocks == 0

    def test_corrupt_interior_degrades_to_certified_prefix(self):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium)
        world = WorldState()
        fps = commit_chain(
            pipeline,
            world,
            [(1, make_result({k(1): 10})), (2, make_result({k(2): 20}))],
        )
        # Flip a payload byte of block 2's BEGIN frame (interior damage).
        scan = pipeline.journal.scan()
        offset = next(
            off
            for off, record in scan.frames
            if isinstance(record, BeginRecord) and record.block_number == 2
        )
        raw = bytearray(medium.read_journal())
        raw[offset + 9] ^= 0xFF
        medium.reset_journal(bytes(raw))

        with pytest.raises(JournalCorruptionError):
            recover(
                medium,
                WorldState,
                policy=RecoveryPolicy(corrupt_tail_policy="raise"),
            )

        metrics = MetricsRegistry()
        result = recover(medium, WorldState, metrics=metrics)
        assert result.corrupt_truncated
        assert result.last_committed_block == 1
        assert result.world.fingerprint() == fps[1]
        assert metrics.value("durability_corrupt_truncations") == 1

    def test_delta_digest_mismatch_is_a_recovery_error(self):
        medium = MemoryMedium()
        journal = WriteAheadJournal(medium)
        writes = {k(1): 10}
        pre_root = WorldState().fingerprint()
        journal.append(BeginRecord(1, 1, pre_root))
        journal.append(TxWriteRecord(1, 0, writes))
        journal.append(SettleRecord(1, {}))
        journal.append(UndoRecord(1, {k(1): 0}))
        journal.append(CommitRecord(1, b"\x00" * 16))  # lies about the delta
        with pytest.raises(RecoveryError, match="digest"):
            recover(medium, WorldState)

    def test_seal_fingerprint_mismatch_is_a_recovery_error(self):
        medium = MemoryMedium()
        journal = WriteAheadJournal(medium)
        writes = {k(1): 10}
        pre_root = WorldState().fingerprint()
        journal.append(BeginRecord(1, 1, pre_root))
        journal.append(TxWriteRecord(1, 0, writes))
        journal.append(SettleRecord(1, {}))
        journal.append(UndoRecord(1, {k(1): 0}))
        journal.append(CommitRecord(1, delta_digest(pre_root, writes)))
        journal.append(SealRecord(1, b"\xee" * 16))  # lies about post-state
        with pytest.raises(RecoveryError, match="sealed root"):
            recover(medium, WorldState)

    def test_committed_unsealed_block_then_continue_is_legit_history(self):
        # A crash at post-commit leaves a committed block without SEAL;
        # after recovery, journaling continues behind it.  That journal
        # must recover cleanly — it is history, not corruption.
        medium = MemoryMedium()
        journal = WriteAheadJournal(medium)
        reference = WorldState()

        w1 = {k(1): 10}
        root0 = reference.fingerprint()
        journal.append(BeginRecord(1, 1, root0))
        journal.append(TxWriteRecord(1, 0, w1))
        journal.append(SettleRecord(1, {}))
        journal.append(UndoRecord(1, {k(1): 0}))
        journal.append(CommitRecord(1, delta_digest(root0, w1)))
        reference.apply(w1)  # no SEAL for block 1

        w2 = {k(2): 20}
        root1 = reference.fingerprint()
        journal.append(BeginRecord(2, 1, root1))
        journal.append(TxWriteRecord(2, 0, w2))
        journal.append(SettleRecord(2, {}))
        journal.append(UndoRecord(2, {k(2): 0}))
        journal.append(CommitRecord(2, delta_digest(root1, w2)))
        reference.apply(w2)
        journal.append(SealRecord(2, reference.fingerprint()))

        result = recover(medium, WorldState)
        assert result.blocks_replayed == 2
        assert result.last_committed_block == 2
        assert result.world.fingerprint() == reference.fingerprint()

    def test_protocol_violation_truncates_and_re_recovers(self):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium)
        world = WorldState()
        fps = commit_chain(pipeline, world, [(1, make_result({k(1): 10}))])
        # BEGIN(2) then BEGIN(3) with block 2 never committed: a protocol
        # violation strictly inside the journal.
        pipeline.journal.append(BeginRecord(2, 1, world.fingerprint()))
        pipeline.journal.append(BeginRecord(3, 1, world.fingerprint()))
        pipeline.journal.append(TxWriteRecord(3, 0, {k(3): 1}))

        with pytest.raises(JournalCorruptionError, match="protocol"):
            recover(
                medium,
                WorldState,
                policy=RecoveryPolicy(corrupt_tail_policy="raise"),
            )

        result = recover(medium, WorldState)
        assert result.corrupt_truncated
        assert result.truncated_bytes > 0
        assert result.last_committed_block == 1
        assert result.world.fingerprint() == fps[1]


class TestReorgRollback:
    def build(self, checkpoint_interval: int = 0):
        medium = MemoryMedium()
        pipeline = DurableCommitPipeline(medium, checkpoint_interval=checkpoint_interval)
        world = WorldState()
        fps = commit_chain(
            pipeline,
            world,
            [
                (1, make_result({k(1): 10, k(2): 5})),
                (2, make_result({k(1): 8, k(3): 30})),
                (3, make_result({k(2): 0, k(4): 40})),
            ],
        )
        return medium, pipeline, world, fps

    def test_rollback_restores_exact_fingerprints(self):
        medium, pipeline, world, fps = self.build()
        metrics = MetricsRegistry()
        manager = ReorgManager(pipeline, metrics=metrics)
        undone = manager.rollback(world, 1)
        assert undone == [3, 2]
        assert world.fingerprint() == fps[1]
        assert metrics.value("durability_reorg_blocks") == 2
        # The journal was truncated with the rollback: recovery now lands
        # on block 1, and the undone blocks are gone from history.
        recovered = recover(medium, WorldState)
        assert recovered.last_committed_block == 1
        assert recovered.world.fingerprint() == fps[1]

    def test_rollback_to_tip_is_a_no_op(self):
        _medium, pipeline, world, fps = self.build()
        assert ReorgManager(pipeline).rollback(world, 3) == []
        assert world.fingerprint() == fps[3]

    def test_policy_depth_limit(self):
        _medium, pipeline, world, _fps = self.build()
        manager = ReorgManager(pipeline, policy=RecoveryPolicy(max_reorg_depth=1))
        with pytest.raises(ReorgDepthExceeded):
            manager.rollback(world, 1)

    def test_pruned_history_refuses_the_rollback(self):
        # checkpoint_interval=2 prunes blocks <= 2 after the checkpoint, so
        # undo history no longer reaches block 1.
        _medium, pipeline, world, _fps = self.build(checkpoint_interval=2)
        manager = ReorgManager(pipeline)
        with pytest.raises(ReorgDepthExceeded, match="checkpoint"):
            manager.rollback(world, 1)
        # Rolling back only past the checkpoint still works.
        assert manager.rollback(world, 2) == [3]

    def test_rollback_from_tampered_world_refuses(self):
        _medium, pipeline, world, _fps = self.build()
        world.apply({k(9): 123})  # the world drifted from the sealed root
        with pytest.raises(RecoveryError, match="refusing"):
            ReorgManager(pipeline).rollback(world, 2)
