"""Conflict-graph analysis and the transaction-level speedup bound."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_block
from repro.workloads import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    build_chain,
    conflict_ratio_block,
)


@pytest.fixture(scope="module")
def chain():
    return build_chain(ChainSpec(tokens=3, amm_pairs=1, accounts=120))


class TestConflictFreeBlocks:
    def test_no_dependencies(self, chain):
        block = conflict_ratio_block(chain, 1, 30, ratio=0.0)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        assert analysis.conflicting_txs == 0
        assert all(not deps for deps in analysis.dependencies)
        assert analysis.critical_path_txs == 1

    def test_bound_is_near_tx_count(self, chain):
        block = conflict_ratio_block(chain, 2, 30, ratio=0.0)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        # The bound is total/max-duration: high for uniform blocks.
        assert analysis.tx_level_speedup_bound > 15


class TestFullyConflictingBlocks:
    def test_chain_spans_the_block(self, chain):
        block = conflict_ratio_block(chain, 3, 30, ratio=1.0)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        assert analysis.conflicting_txs == 30
        assert analysis.critical_path_txs == 30  # one long chain
        # Warm reads make later links cheaper, so the bound exceeds 1,
        # but it stays far below the conflict-free bound.
        assert analysis.tx_level_speedup_bound < 10

    def test_hot_key_identified(self, chain):
        from repro.contracts import balance_slot
        from repro.state.keys import storage_key

        block = conflict_ratio_block(chain, 4, 20, ratio=1.0)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        # Every tx touches the owner's balance slot (alongside the proxied
        # token's code and implementation-slot keys, which tie at 20).
        full_touch = {key for key, count in analysis.hot_keys if count == 20}
        assert storage_key(
            chain.tokens[0], balance_slot(chain.accounts[0])
        ) in full_touch


class TestMainnetBlocks:
    def test_profile_is_coherent(self, chain):
        block = MainnetWorkload(chain, MainnetConfig(txs_per_block=40)).block(7)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        assert analysis.tx_count == 40
        assert 0 < analysis.conflicting_txs <= 40
        assert 1 <= analysis.critical_path_txs <= 40
        assert analysis.critical_path_us <= analysis.total_us
        assert analysis.tx_level_speedup_bound >= 1.0
        assert "speedup bound" in analysis.describe()

    def test_dependencies_point_backwards(self, chain):
        block = MainnetWorkload(chain, MainnetConfig(txs_per_block=30)).block(8)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        for j, deps in enumerate(analysis.dependencies):
            assert all(i < j for i in deps)

    def test_parallelevm_can_exceed_the_tx_level_bound(self, chain):
        """The headline structural claim: operation-level conflict handling
        is not limited by the transaction-level critical path."""
        from repro.concurrency import SerialExecutor
        from repro.core.executor import ParallelEVMExecutor

        block = conflict_ratio_block(chain, 9, 50, ratio=1.0)
        analysis = analyze_block(chain.fresh_world(), block.txs, block.env)
        serial = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        result = ParallelEVMExecutor(threads=16).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        achieved = serial.makespan_us / result.makespan_us
        assert achieved > analysis.tx_level_speedup_bound
