"""256-bit word arithmetic: yellow-paper semantics, edge cases, properties."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro import primitives as p

WORDS = st.integers(min_value=0, max_value=p.UINT_MAX)
SMALL = st.integers(min_value=0, max_value=2**64)

MIN_SIGNED = 1 << 255  # -2^255 in two's complement


class TestUnsignedArithmetic:
    def test_add_wraps(self):
        assert p.add(p.UINT_MAX, 1) == 0

    def test_sub_wraps(self):
        assert p.sub(0, 1) == p.UINT_MAX

    def test_mul_wraps(self):
        assert p.mul(1 << 200, 1 << 200) == (1 << 400) % p.WORD_MOD

    def test_div_by_zero_is_zero(self):
        assert p.div(123, 0) == 0

    def test_div_truncates(self):
        assert p.div(7, 2) == 3

    def test_mod_by_zero_is_zero(self):
        assert p.mod(123, 0) == 0

    def test_addmod_ignores_word_wrap(self):
        # (MAX + MAX) % MAX would be 0 if computed with wrapping.
        assert p.addmod(p.UINT_MAX, p.UINT_MAX, p.UINT_MAX) == 0
        assert p.addmod(p.UINT_MAX, 2, p.UINT_MAX) == 2

    def test_mulmod_ignores_word_wrap(self):
        assert p.mulmod(p.UINT_MAX, p.UINT_MAX, 12) == (p.UINT_MAX**2) % 12

    def test_addmod_zero_modulus(self):
        assert p.addmod(1, 2, 0) == 0

    def test_mulmod_zero_modulus(self):
        assert p.mulmod(3, 4, 0) == 0

    def test_exp(self):
        assert p.exp(2, 256) == 0  # wraps to zero
        assert p.exp(3, 5) == 243
        assert p.exp(0, 0) == 1


class TestSignedArithmetic:
    def test_sdiv_truncates_toward_zero(self):
        minus7 = p.from_signed(-7)
        assert p.to_signed(p.sdiv(minus7, 2)) == -3

    def test_sdiv_by_zero(self):
        assert p.sdiv(p.from_signed(-5), 0) == 0

    def test_sdiv_min_by_minus_one_overflow(self):
        # The EVM defines MIN_SIGNED / -1 == MIN_SIGNED.
        assert p.sdiv(MIN_SIGNED, p.from_signed(-1)) == MIN_SIGNED

    def test_smod_takes_dividend_sign(self):
        assert p.to_signed(p.smod(p.from_signed(-7), 2)) == -1
        assert p.to_signed(p.smod(7, p.from_signed(-2))) == 1

    def test_smod_by_zero(self):
        assert p.smod(p.from_signed(-5), 0) == 0

    def test_slt_sgt(self):
        assert p.slt(p.from_signed(-1), 0) == 1
        assert p.sgt(0, p.from_signed(-1)) == 1
        assert p.slt(1, 2) == 1
        assert p.sgt(2, 1) == 1


class TestSignExtend:
    def test_extends_negative_byte(self):
        assert p.signextend(0, 0xFF) == p.UINT_MAX

    def test_keeps_positive_byte(self):
        assert p.signextend(0, 0x7F) == 0x7F

    def test_masks_higher_bytes_when_positive(self):
        assert p.signextend(0, 0x17F) == 0x7F

    def test_index_31_is_identity(self):
        assert p.signextend(31, 0xDEAD) == 0xDEAD

    def test_huge_index_is_identity(self):
        assert p.signextend(1 << 100, 0xBEEF) == 0xBEEF


class TestBitOps:
    def test_byte_extracts_msb_first(self):
        value = 0xAA << 248
        assert p.byte(0, value) == 0xAA
        assert p.byte(31, 0xBB) == 0xBB
        assert p.byte(32, 0xBB) == 0

    def test_shl_shr_bounds(self):
        assert p.shl(256, 1) == 0
        assert p.shr(256, p.UINT_MAX) == 0
        assert p.shl(1, 1) == 2
        assert p.shr(1, 2) == 1

    def test_sar_preserves_sign(self):
        assert p.sar(1, p.from_signed(-2)) == p.from_signed(-1)
        assert p.sar(300, p.from_signed(-1)) == p.UINT_MAX
        assert p.sar(300, 5) == 0

    def test_not(self):
        assert p.not_(0) == p.UINT_MAX
        assert p.not_(p.UINT_MAX) == 0


class TestConversions:
    def test_word_bytes_roundtrip(self):
        for v in (0, 1, p.UINT_MAX, 0xDEADBEEF << 128):
            assert p.bytes_to_word(p.word_to_bytes(v)) == v

    def test_address_word_roundtrip(self):
        addr = p.make_address(424242)
        assert p.word_to_address(p.address_to_word(addr)) == addr

    def test_word_to_address_truncates(self):
        word = (0xFF << 240) | 0x1234
        assert p.word_to_address(word) == (0x1234).to_bytes(20, "big")

    def test_make_address_distinct_and_sized(self):
        a, b = p.make_address(1), p.make_address(2)
        assert a != b
        assert len(a) == 20
        assert a[0] != 0  # never the zero address


@given(WORDS, WORDS)
def test_add_matches_modular_arithmetic(a, b):
    assert p.add(a, b) == (a + b) % p.WORD_MOD


@given(WORDS, WORDS)
def test_sub_is_inverse_of_add(a, b):
    assert p.sub(p.add(a, b), b) == a


@given(WORDS)
def test_signed_roundtrip(a):
    assert p.from_signed(p.to_signed(a)) == a


@given(WORDS, WORDS)
def test_sdiv_smod_reconstruct_dividend(a, b):
    # a == b * (a sdiv b) + (a smod b) in signed arithmetic (when b != 0).
    if b == 0:
        return
    q = p.to_signed(p.sdiv(a, b))
    r = p.to_signed(p.smod(a, b))
    assert p.to_signed(a) == p.to_signed(b) * q + r


@given(WORDS, st.integers(min_value=0, max_value=255))
def test_shl_then_shr_clears_low_bits_only(a, s):
    assert p.shr(s, p.shl(s, a)) == a & (p.UINT_MAX >> s)


@given(WORDS)
def test_not_is_involution(a):
    assert p.not_(p.not_(a)) == a


@given(st.integers(min_value=0, max_value=31), WORDS)
def test_byte_matches_big_endian_encoding(i, v):
    assert p.byte(i, v) == p.word_to_bytes(v)[i]
