"""Replication building blocks: shipping, replicas, fencing, failover.

Unit coverage for :mod:`repro.replication` plus the satellites that ride
on it: per-sender rate shaping in the mempool, the facade's NotPrimary
write shedding and replication-aware health, and the obs report table.
The cluster-level end-to-end paths (failover sweep, chaos scenarios)
live in ``tests/integration/test_replication.py``.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import EXECUTOR_FACTORIES
from repro.durability import DurableCommitPipeline, MemoryMedium
from repro.durability.checkpoint import encode_snapshot
from repro.errors import (
    JournalCorruptionError,
    NotPrimary,
    RateLimited,
    ReplicaDivergence,
    StaleEpoch,
)
from repro.evm.message import Transaction
from repro.mempool import Mempool, MempoolConfig
from repro.obs import MetricsRegistry, replication_table
from repro.obs.lifecycle import FlightRecorder
from repro.replication import (
    FailoverController,
    FailoverPolicy,
    FailoverReport,
    ReplicaService,
    ShipFeed,
    ShippingMedium,
)
from repro.rpc import RpcConfig, RpcFacade
from repro.service import ChainService
from repro.state.keys import balance_key
from repro.state.world import WorldState
from repro.workloads import ChainSpec, build_chain


# -- shipping primitives -------------------------------------------------


class _FakeResult:
    def __init__(self, writes):
        self.writes = dict(writes)
        self.tx_results = [
            type("R", (), {"tx": type("T", (), {"tx_index": i})(), "write_set": {k: v}})()
            for i, (k, v) in enumerate(writes.items())
        ]


def _shipped_pipeline(epoch: int = 1, checkpoint_interval: int = 0):
    feed = ShipFeed(epoch=epoch)
    world = WorldState()
    feed.ship_snapshot(0, encode_snapshot(world, 0))
    medium = ShippingMedium(MemoryMedium(), feed)
    pipeline = DurableCommitPipeline(
        medium, checkpoint_interval=checkpoint_interval, epoch=epoch
    )
    return feed, medium, pipeline, world


def _commit(pipeline, world, number):
    key = balance_key(number.to_bytes(20, "big"))
    pipeline.commit(world, number, _FakeResult({key: 1_000 + number}))


class TestShipping:
    def test_feed_mirrors_every_journal_byte(self):
        feed, medium, pipeline, world = _shipped_pipeline()
        _commit(pipeline, world, 1)
        _commit(pipeline, world, 2)
        assert feed.read_from(0) == medium.inner.read_journal()

    def test_local_truncation_never_rewrites_the_feed(self):
        feed, medium, pipeline, world = _shipped_pipeline()
        _commit(pipeline, world, 1)
        before = feed.read_from(0)
        medium.truncate_journal(10)
        medium.reset_journal(b"RWAL1\n")
        assert feed.read_from(0) == before

    def test_finalized_feed_counts_fenced_bytes(self):
        metrics = MetricsRegistry()
        feed = ShipFeed(epoch=1, metrics=metrics)
        feed.append(b"live")
        feed.finalize()
        feed.append(b"zombie")
        assert metrics.value("replication_fenced_bytes_total") == 6.0
        assert metrics.value("replication_shipped_bytes_total") == 10.0
        # Fenced bytes still land: a partitioned writer cannot be stopped.
        assert feed.read_from(0) == b"livezombie"


# -- the replica state machine -------------------------------------------


class TestReplica:
    def test_streams_commits_and_verifies_seals(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        replica = ReplicaService("r0", feed)
        _commit(pipeline, world, 1)
        _commit(pipeline, world, 2)
        replica.poll()
        assert replica.state == "streaming"
        assert replica.last_committed_block == 2
        assert replica.last_sealed_block == 2
        assert replica.world.fingerprint() == world.fingerprint()
        assert replica.lag_blocks(2) == 0
        assert replica.lag_blocks(5) == 3

    def test_health_reports_the_essentials(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        replica = ReplicaService("r0", feed)
        _commit(pipeline, world, 1)
        replica.poll()
        health = replica.health()
        assert health["state"] == "streaming"
        assert health["last_committed_block"] == 1
        assert health["fence_epoch"] == 1

    def test_stale_epoch_frames_are_rejected_not_fatal(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        replica = ReplicaService("r0", feed)
        _commit(pipeline, world, 1)
        replica.poll()
        fingerprint = replica.world.fingerprint()
        replica.fence(2)  # a new primary was elected elsewhere
        _commit(pipeline, world, 2)  # the deposed primary keeps writing
        replica.poll()
        assert replica.state == "streaming"
        assert replica.stale_frames_rejected > 0
        assert all(isinstance(e, StaleEpoch) for e in replica.stale_rejections)
        assert replica.stale_rejections[0].epoch == 1
        assert replica.stale_rejections[0].fence == 2
        assert replica.world.fingerprint() == fingerprint
        assert replica.last_committed_block == 1

    def test_divergent_replay_quarantines_and_dumps_flight(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        flight = FlightRecorder()
        replica = ReplicaService("r0", feed, flight=flight)
        replica.corrupt_block = 1
        _commit(pipeline, world, 1)
        with pytest.raises(ReplicaDivergence) as excinfo:
            replica.poll()
        assert replica.state == "quarantined"
        assert excinfo.value.replica == "r0"
        assert excinfo.value.block_number == 1
        assert flight.triggered >= 1 and flight.dumps

    def test_corrupted_feed_byte_quarantines(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        replica = ReplicaService("r0", feed)
        _commit(pipeline, world, 1)
        replica.flip_feed_byte = len(b"RWAL1\n") + 9  # inside frame payload
        with pytest.raises(JournalCorruptionError):
            replica.poll()
        assert replica.state == "quarantined"
        assert replica.poll() == 0  # quarantine is terminal

    def test_promote_recovers_from_the_replicas_own_journal(self):
        feed, _medium, pipeline, world = _shipped_pipeline()
        replica = ReplicaService("r0", feed)
        _commit(pipeline, world, 1)
        _commit(pipeline, world, 2)
        replica.poll()
        replica.finalize_source()
        recovery = replica.promote()
        assert recovery.last_committed_block == 2
        assert recovery.world.fingerprint() == world.fingerprint()


# -- failover controller -------------------------------------------------


class _Stub:
    def __init__(self, name, last_committed, state="streaming"):
        self.name = name
        self.last_committed_block = last_committed
        self.state = state

    def lag_blocks(self, tip):
        if tip is None or self.last_committed_block is None:
            return 0
        return max(0, tip - self.last_committed_block)


class TestFailoverController:
    def test_liveness_is_a_pure_clock_comparison(self):
        controller = FailoverController(FailoverPolicy(heartbeat_timeout_us=100.0))
        controller.heartbeat(50.0)
        assert not controller.primary_lost(150.0)
        assert controller.primary_lost(150.1)

    def test_election_prefers_freshest_then_name(self):
        controller = FailoverController()
        a, b, c = _Stub("a", 5), _Stub("b", 7), _Stub("c", 7)
        assert controller.pick_candidate([a, b, c]) is b
        assert controller.pick_candidate([a, c, b]) is b  # order-free

    def test_quarantined_replicas_are_never_elected(self):
        controller = FailoverController()
        fresh = _Stub("fresh", 9, state="quarantined")
        stale = _Stub("stale", 3)
        assert controller.pick_candidate([fresh, stale]) is stale
        assert controller.pick_candidate([fresh]) is None

    def test_epoch_is_monotonic_and_counted(self):
        metrics = MetricsRegistry()
        controller = FailoverController(metrics=metrics)
        assert controller.epoch == 1
        assert controller.next_epoch() == 2
        assert controller.next_epoch() == 3
        assert metrics.value("replication_failovers_total") == 2.0
        assert metrics.value("replication_epoch") == 3.0

    def test_report_accounts_three_phases(self):
        report = FailoverReport(
            epoch=2,
            promoted="replica-1",
            detection_us=100.0,
            catchup_us=40.0,
            promotion_us=10.0,
            last_committed_block=7,
            last_sealed_block=7,
            blocks_preserved=3,
        )
        assert report.total_us == 150.0
        as_dict = report.as_dict()
        assert as_dict["total_us"] == 150.0
        assert as_dict["promoted"] == "replica-1"


# -- satellite: per-sender rate shaping ----------------------------------


@pytest.fixture(scope="module")
def chain():
    return build_chain(ChainSpec(accounts=16, tokens=1, amm_pairs=0, seed=7))


def _transfer(chain, sender_index=0, nonce=0, gas_price=10):
    return Transaction(
        sender=chain.accounts[sender_index],
        to=chain.accounts[-1],
        value=1_000,
        data=b"",
        gas_limit=21_000,
        gas_price=gas_price,
        nonce=nonce,
    )


class TestRateShaping:
    def test_disabled_by_default(self, chain):
        pool = Mempool(MempoolConfig(), chain.world)
        for nonce in range(8):
            pool.add(_transfer(chain, nonce=nonce), now_us=0.0)
        assert len(pool) == 8

    def test_burst_then_rate_limited_with_retry_hint(self, chain):
        metrics = MetricsRegistry()
        config = MempoolConfig(sender_rate_per_s=10.0, sender_burst=3)
        pool = Mempool(config, chain.world, metrics=metrics)
        for nonce in range(3):
            pool.add(_transfer(chain, nonce=nonce), now_us=0.0)
        with pytest.raises(RateLimited) as excinfo:
            pool.add(_transfer(chain, nonce=3), now_us=0.0)
        # 10 tokens/s -> one token every 100 ms of simulated time.
        assert excinfo.value.retry_after_us == pytest.approx(100_000.0)
        assert excinfo.value.retryable
        assert metrics.value(
            "mempool_rejected_total", reason="rate-limited"
        ) == 1.0

    def test_bucket_refills_on_the_simulated_clock(self, chain):
        config = MempoolConfig(sender_rate_per_s=10.0, sender_burst=1)
        pool = Mempool(config, chain.world)
        pool.add(_transfer(chain, nonce=0), now_us=0.0)
        with pytest.raises(RateLimited):
            pool.add(_transfer(chain, nonce=1), now_us=50_000.0)
        pool.add(_transfer(chain, nonce=1), now_us=200_000.0)
        assert len(pool) == 2

    def test_buckets_are_per_sender(self, chain):
        config = MempoolConfig(sender_rate_per_s=10.0, sender_burst=1)
        pool = Mempool(config, chain.world)
        pool.add(_transfer(chain, sender_index=0), now_us=0.0)
        pool.add(_transfer(chain, sender_index=1), now_us=0.0)
        with pytest.raises(RateLimited):
            pool.add(_transfer(chain, sender_index=0, nonce=1), now_us=0.0)

    def test_failed_attempts_still_burn_tokens(self, chain):
        config = MempoolConfig(sender_rate_per_s=10.0, sender_burst=2, min_gas_price=5)
        pool = Mempool(config, chain.world)
        from repro.errors import FeeTooLow

        for _ in range(2):
            with pytest.raises(FeeTooLow):
                pool.add(_transfer(chain, gas_price=1), now_us=0.0)
        with pytest.raises(RateLimited):
            pool.add(_transfer(chain, gas_price=10), now_us=0.0)


# -- satellite: facade role awareness ------------------------------------


class _View:
    def __init__(self, role="replica", epoch=3):
        self.role = role
        self.epoch = epoch

    def health(self):
        return {
            "role": self.role,
            "epoch": self.epoch,
            "replication_lag_blocks": 1,
            "last_sealed_block": 41,
            "replicas": [],
        }


@pytest.fixture()
def facade(chain):
    executor = EXECUTOR_FACTORIES["serial"](1, None)
    service = ChainService(None, executor, chain=chain)
    mempool = Mempool(MempoolConfig(), chain.world)
    return RpcFacade(service, mempool, RpcConfig(block_txs=4))


class TestFacadeReplication:
    def test_writes_to_non_primary_shed_typed(self, facade, chain):
        from repro.mempool import wire_transaction

        facade.replication = _View(role="replica")
        with pytest.raises(NotPrimary) as excinfo:
            facade.send_transaction(wire_transaction(_transfer(chain)))
        assert excinfo.value.role == "replica"
        assert excinfo.value.epoch == 3
        assert excinfo.value.retryable
        assert len(facade.mempool) == 0

    def test_primary_role_admits_normally(self, facade, chain):
        from repro.mempool import wire_transaction

        facade.replication = _View(role="primary")
        result = facade.send_transaction(wire_transaction(_transfer(chain)))
        assert result["tx_hash"].startswith("0x")

    def test_health_merges_the_replication_view(self, facade):
        facade.replication = _View(role="demoted", epoch=5)
        health = facade.health()
        assert health["role"] == "demoted"
        assert health["epoch"] == 5
        assert health["replication_lag_blocks"] == 1
        assert "mempool_depth" in health  # base report still present

    def test_health_without_a_view_is_unchanged(self, facade):
        health = facade.health()
        assert "role" not in health


# -- satellite: the obs table --------------------------------------------


class TestReplicationTable:
    def test_silent_registry_renders_nothing(self):
        assert replication_table(MetricsRegistry()) is None

    def test_counters_and_lag_gauges_render(self):
        metrics = MetricsRegistry()
        metrics.counter("replication_shipped_bytes_total").inc(1234)
        metrics.counter("replication_failovers_total").inc()
        metrics.gauge("replication_epoch").set(2.0)
        metrics.gauge("replication_lag_blocks", replica="replica-0").set(1.0)
        table = replication_table(metrics)
        assert "journal bytes shipped" in table
        assert "1234" in table
        assert "fencing epoch" in table
        assert "lag (replica-0)" in table
