"""SSA operation log container: DUG edges, tracking maps, slice extraction."""

from __future__ import annotations

import pytest

from repro.core.ssa_log import LogEntry, PseudoOp, SSAOperationLog
from repro.evm.opcodes import Op
from repro.primitives import make_address
from repro.state.keys import storage_key

KEY_A = storage_key(make_address(1), 1)
KEY_B = storage_key(make_address(1), 2)


def sload(log: SSAOperationLog, key, value, def_storage=None) -> LogEntry:
    entry = LogEntry(
        lsn=log.next_lsn(),
        opcode=Op.SLOAD,
        key=key,
        result=value,
        def_storage=def_storage,
    )
    log.append(entry)
    log.record_load(entry)
    return entry


def sstore(log: SSAOperationLog, key, value, value_def=None) -> LogEntry:
    entry = LogEntry(
        lsn=log.next_lsn(),
        opcode=Op.SSTORE,
        key=key,
        operands=(value,),
        def_stack=(value_def,),
        result=value,
    )
    log.append(entry)
    log.record_store(entry)
    return entry


def alu(log: SSAOperationLog, opcode, operands, defs, result) -> LogEntry:
    entry = LogEntry(
        lsn=log.next_lsn(),
        opcode=opcode,
        operands=operands,
        def_stack=defs,
        result=result,
    )
    log.append(entry)
    return entry


class TestAppend:
    def test_lsns_are_sequential(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        e1 = alu(log, Op.ADD, (10, 5), (e0.lsn, None), 15)
        assert (e0.lsn, e1.lsn) == (0, 1)
        assert len(log) == 2

    def test_non_sequential_lsn_rejected(self):
        log = SSAOperationLog()
        with pytest.raises(AssertionError):
            log.append(LogEntry(lsn=5, opcode=Op.ADD))


class TestDUG:
    def test_def_stack_edge(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        e1 = alu(log, Op.ADD, (10, 5), (e0.lsn, None), 15)
        assert log.uses[e0.lsn] == [e1.lsn]

    def test_def_storage_edge(self):
        log = SSAOperationLog()
        s0 = sstore(log, KEY_A, 7)
        l1 = sload(log, KEY_A, 7, def_storage=s0.lsn)
        assert l1.lsn in log.uses[s0.lsn]

    def test_def_memory_edges(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        entry = LogEntry(
            lsn=log.next_lsn(),
            opcode=Op.MLOAD,
            operands=(b"\x00" * 32,),
            def_memory=((0, 32, e0.lsn, 0),),
            result=10,
        )
        log.append(entry)
        assert entry.lsn in log.uses[e0.lsn]

    def test_duplicate_deps_make_one_edge(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        alu(log, Op.MUL, (10, 10), (e0.lsn, e0.lsn), 100)
        assert log.uses[e0.lsn] == [1]

    def test_dependents_of_transitive(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)  # source
        e1 = alu(log, Op.ADD, (10, 1), (e0.lsn, None), 11)
        e2 = alu(log, Op.MUL, (11, 2), (e1.lsn, None), 22)
        _unrelated = sload(log, KEY_B, 5)
        e4 = sstore(log, KEY_A, 22, value_def=e2.lsn)
        slice_ = log.dependents_of([e0.lsn])
        assert slice_ == [e0.lsn, e1.lsn, e2.lsn, e4.lsn]

    def test_dependents_of_returns_execution_order(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 1)
        e1 = sload(log, KEY_B, 2)
        e2 = alu(log, Op.ADD, (1, 2), (e0.lsn, e1.lsn), 3)
        assert log.dependents_of([e1.lsn, e0.lsn]) == [0, 1, 2]

    def test_empty_sources(self):
        log = SSAOperationLog()
        sload(log, KEY_A, 1)
        assert log.dependents_of([]) == []


class TestTrackingMaps:
    def test_type1_load_recorded_in_direct_reads(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        assert log.direct_reads[KEY_A] == [e0.lsn]

    def test_type2_load_not_in_direct_reads(self):
        log = SSAOperationLog()
        s0 = sstore(log, KEY_A, 7)
        sload(log, KEY_A, 7, def_storage=s0.lsn)
        assert KEY_A not in log.direct_reads

    def test_latest_writes_tracks_most_recent(self):
        log = SSAOperationLog()
        s0 = sstore(log, KEY_A, 1)
        s1 = sstore(log, KEY_A, 2)
        assert log.latest_writes[KEY_A] == s1.lsn
        assert log.writes_by_key[KEY_A] == [s0.lsn, s1.lsn]

    def test_multiple_type1_loads_all_recorded(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        e1 = sload(log, KEY_A, 10)
        assert log.direct_reads[KEY_A] == [e0.lsn, e1.lsn]


class TestResultBytes:
    def test_int_result(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 0xAB)
        assert log.result_bytes(e0.lsn) == (0xAB).to_bytes(32, "big")

    def test_bytes_result(self):
        log = SSAOperationLog()
        entry = LogEntry(lsn=0, opcode=Op.MLOAD, result=b"\x01" * 32)
        log.append(entry)
        assert log.result_bytes(0) == b"\x01" * 32


class TestRendering:
    def test_describe_mentions_lsn_and_opcode(self):
        log = SSAOperationLog()
        e0 = sload(log, KEY_A, 10)
        text = e0.describe()
        assert "L0" in text
        assert "SLOAD" in text

    def test_pseudo_op_names(self):
        entry = LogEntry(lsn=0, opcode=PseudoOp.ASSERT_EQ, operands=(5,), def_stack=(None,))
        assert "ASSERT_EQ" in entry.describe()

    def test_dump_is_line_per_entry(self):
        log = SSAOperationLog()
        sload(log, KEY_A, 1)
        sstore(log, KEY_A, 2)
        assert len(log.dump().splitlines()) == 2
