"""The continuous block stream: determinism, lazy funding, executability."""

from __future__ import annotations

from repro.concurrency import SerialExecutor
from repro.contracts import balance_slot
from repro.state.keys import balance_key, storage_key
from repro.workloads import BlockStream, StreamSpec, build_stream_chain

SMALL = StreamSpec(accounts=300, txs_per_block=20, seed=9)


def _tx_fingerprint(block):
    return [
        (tx.sender, tx.to, tx.value, tx.nonce, bytes(tx.data or b""))
        for tx in block.txs
    ]


class TestBuildStreamChain:
    def test_funds_accounts_linearly(self):
        chain = build_stream_chain(StreamSpec(accounts=50, seed=1))
        assert len(chain.accounts) == 50
        assert chain.world.peek(balance_key(chain.accounts[0])) > 0
        assert chain.world.peek(balance_key(chain.accounts[-1])) > 0

    def test_cache_capacity_is_applied_and_stats_reset(self):
        chain = build_stream_chain(
            StreamSpec(accounts=20, seed=1), cache_capacity=123
        )
        db = chain.world.db
        assert db.cache.capacity == 123
        assert db.disk_reads == 0 and db.cache_reads == 0
        assert len(db.cache) == 0

    def test_large_universe_builds_without_quadratic_funding(self):
        # 20k accounts would take minutes under the eager per-account ×
        # per-token genesis; the stream chain funds ether only.
        chain = build_stream_chain(StreamSpec(accounts=20_000, seed=1))
        assert len(chain.accounts) == 20_000


class TestBlockStreamDeterminism:
    def test_same_spec_same_blocks(self):
        a = BlockStream(build_stream_chain(SMALL))
        b = BlockStream(build_stream_chain(SMALL))
        for offset in range(3):
            number = SMALL.start_block + offset
            assert _tx_fingerprint(a.block(number)) == _tx_fingerprint(
                b.block(number)
            )

    def test_different_seed_different_blocks(self):
        other = StreamSpec(accounts=300, txs_per_block=20, seed=10)
        a = BlockStream(build_stream_chain(SMALL))
        b = BlockStream(build_stream_chain(other))
        assert _tx_fingerprint(a.block(SMALL.start_block)) != _tx_fingerprint(
            b.block(other.start_block)
        )

    def test_lazy_funding_writes_are_deterministic(self):
        worlds = []
        for _ in range(2):
            chain = build_stream_chain(SMALL)
            stream = BlockStream(chain)
            for offset in range(3):
                stream.block(SMALL.start_block + offset)
            worlds.append(chain.world)
        assert worlds[0].fingerprint() == worlds[1].fingerprint()


class TestLazyFunding:
    def test_funding_uses_peek_not_simulated_reads(self):
        chain = build_stream_chain(SMALL)
        stream = BlockStream(chain)
        db = chain.world.db
        stream.block(SMALL.start_block)
        # Generation provisions balances/allowances but must not touch the
        # simulated read path (cache contents, latency counters).
        assert db.disk_reads == 0 and db.cache_reads == 0
        assert len(db.cache) == 0

    def test_token_balances_appear_on_first_use(self):
        chain = build_stream_chain(SMALL)
        stream = BlockStream(chain)
        token = chain.tokens[0]
        account = chain.accounts[5]
        assert chain.world.peek(storage_key(token, balance_slot(account))) == 0
        stream._ensure_token_balance(token, account)
        assert (
            chain.world.peek(storage_key(token, balance_slot(account)))
            == SMALL.token_balance
        )
        # Memoized: a second call is a no-op set lookup.
        stream._ensure_token_balance(token, account)


class TestStreamExecutability:
    def test_blocks_execute_with_no_systematic_failures(self):
        chain = build_stream_chain(SMALL)
        stream = BlockStream(chain)
        executor = SerialExecutor()
        total = succeeded = 0
        for offset in range(3):
            block = stream.block(SMALL.start_block + offset)
            result = executor.execute_block(chain.world, block.txs, block.env)
            chain.world.apply(result.writes)
            total += len(result.tx_results)
            succeeded += sum(1 for r in result.tx_results if r.success)
        assert total == 3 * SMALL.txs_per_block
        assert succeeded == total


class TestConflictKnob:
    def test_hot_share_drifts_with_block_height(self):
        spec = StreamSpec(
            accounts=300, hot_recipient_share=0.2, hot_drift_per_1k=0.1, seed=3
        )
        stream = BlockStream(build_stream_chain(spec))
        start = spec.start_block
        assert stream.hot_share(start) == 0.2
        assert stream.hot_share(start + 2000) == 0.4
        assert stream.hot_share(start + 100_000) == 0.95  # clamped

    def test_hot_share_concentrates_recipients(self):
        cold = StreamSpec(
            accounts=300, txs_per_block=40, hot_recipient_share=0.0, seed=4
        )
        hot = StreamSpec(
            accounts=300, txs_per_block=40, hot_recipient_share=0.9, seed=4
        )

        def hot_hits(spec):
            stream = BlockStream(build_stream_chain(spec))
            hot_set = set(stream.chain.accounts[: spec.hot_recipients])
            hits = 0
            for offset in range(4):
                for tx in stream.block(spec.start_block + offset).txs:
                    if tx.to in hot_set or (
                        tx.data and any(h in bytes(tx.data) for h in hot_set)
                    ):
                        hits += 1
            return hits

        assert hot_hits(hot) > hot_hits(cold) * 2
