"""The seeded open-loop client fleet."""

from __future__ import annotations

from repro.rpc import ingress_backoff_policy
from repro.workloads.clients import ClientSpec, OpenLoopClient, build_fleet


def fleet(spec: ClientSpec, accounts: int = 12):
    universe = [bytes([i + 1]) * 20 for i in range(accounts)]
    return build_fleet(spec, universe, ingress_backoff_policy())


class TestDeterminism:
    def test_same_seed_same_schedule_and_requests(self):
        spec = ClientSpec(clients=3, seed=42, malformed_share=0.2, nonce_gap_share=0.1)
        a, b = fleet(spec), fleet(spec)
        for left, right in zip(a, b):
            now = 0.0
            for _ in range(20):
                nxt = left.next_arrival(now)
                assert nxt == right.next_arrival(now)
                assert left.make_request(nxt) == right.make_request(nxt)
                now = nxt

    def test_different_clients_draw_independent_streams(self):
        spec = ClientSpec(clients=2, seed=42)
        a, b = fleet(spec)
        assert a.next_arrival(0.0) != b.next_arrival(0.0)


class TestShape:
    def test_spike_window_boosts_the_rate(self):
        spec = ClientSpec(
            clients=1, base_rate_tps=100.0, spike_multiplier=4.0,
            spike_from_us=1_000_000.0, spike_until_us=2_000_000.0,
        )
        client = fleet(spec)[0]
        assert client._rate_tps(500_000.0) == 100.0
        assert client._rate_tps(1_500_000.0) == 400.0
        assert client._rate_tps(2_500_000.0) == 100.0

    def test_malformed_wires_do_not_burn_nonces(self):
        spec = ClientSpec(clients=1, seed=7, malformed_share=1.0, read_share=0.0)
        client = fleet(spec)[0]
        for _ in range(10):
            client.make_request(0.0)
        assert client.nonce == 0

    def test_senders_are_disjoint_from_recipients(self):
        spec = ClientSpec(clients=3)
        clients = fleet(spec, accounts=12)
        senders = {c.account for c in clients}
        for client in clients:
            assert senders.isdisjoint(client.recipients)


class TestRetry:
    def test_budget_and_jittered_backoff(self):
        spec = ClientSpec(clients=1, max_retries=2)
        client = fleet(spec)[0]
        policy = client.policy
        delay = client.retry_delay_us(0, 0.0)
        assert delay is not None
        # Jitter stays within ±10% of the policy schedule.
        assert 0.9 * policy.backoff_us(0) <= delay <= 1.1 * policy.backoff_us(0)
        # The server's retry-after dominates when it is larger.
        big = client.retry_delay_us(1, 10_000_000.0)
        assert big >= 0.9 * 10_000_000.0
        assert client.retry_delay_us(2, 0.0) is None
        assert client.gave_up == 1
        assert client.retries == 2
