"""Transaction lifecycle tracing: waterfall tiling, SLO burn math,
flight-recorder bounds, and the registry's label-cardinality guard."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.attribution import collect_serving_attribution, hot_sender_table
from repro.obs.lifecycle import (
    SERVER_FAULT_REASONS,
    TILING_EPS_US,
    WATERFALL_PHASES,
    FlightRecorder,
    LifecycleReport,
    LifecycleTracker,
    SloConfig,
    SloMonitor,
    TxLifecycle,
)
from repro.obs.metrics import OVERFLOW_LABEL


def _committed_record(**overrides) -> TxLifecycle:
    record = TxLifecycle(
        tx_hash="0xaa",
        sender="0x01",
        first_seen_us=100.0,
        submitted_us=250.0,
        attempts=2,
        admitted_us=250.0,
        selected_us=1_000.0,
        executed_us=1_400.0,
        drained_us=1_650.0,
        done_us=1_900.0,
        block_number=7,
        outcome="committed",
    )
    for name, value in overrides.items():
        setattr(record, name, value)
    return record


class _FakeEntry:
    def __init__(self, tx_hash: bytes) -> None:
        self.tx_hash = tx_hash


class _FakeOutcome:
    def __init__(self, number, makespan_us, latency_us, tx_latencies_us):
        self.number = number
        self.makespan_us = makespan_us
        self.latency_us = latency_us
        self.tx_latencies_us = tx_latencies_us


class TestTxLifecycle:
    def test_committed_waterfall_tiles_exactly(self):
        record = _committed_record()
        segments = record.waterfall()
        assert [name for name, _, _ in segments] == list(WATERFALL_PHASES)
        # Adjacent segments share endpoints.
        for (_, _, end), (_, start, _) in zip(segments, segments[1:]):
            assert end == start
        assert record.tiling_error_us() <= TILING_EPS_US
        assert record.client_latency_us() == 1_800.0

    def test_shed_waterfall_ends_with_queue_segment(self):
        record = _committed_record(
            selected_us=None,
            executed_us=None,
            drained_us=None,
            done_us=5_000.0,
            outcome="shed:expired",
        )
        segments = record.waterfall()
        assert [name for name, _, _ in segments] == ["retry", "admission", "queue"]
        assert segments[-1][2] == 5_000.0
        assert record.tiling_error_us() <= TILING_EPS_US

    def test_pending_record_refuses_waterfall(self):
        record = _committed_record(done_us=None)
        with pytest.raises(ValueError):
            record.waterfall()
        assert record.client_latency_us() is None

    def test_as_dict_phases_sum_to_latency(self):
        entry = _committed_record().as_dict()
        assert entry["latency_us"] == pytest.approx(
            sum(entry["phases"].values()), abs=TILING_EPS_US
        )
        json.dumps(entry)  # must serialise


class TestSloMonitor:
    def test_burn_is_bad_fraction_over_budget(self):
        slo = SloMonitor(SloConfig(latency_goal=0.9, window_us=1_000.0))
        # 10 observations in window 0, 2 over the objective: fraction 0.2,
        # budget 0.1 -> burn 2.0.
        for i in range(10):
            slo.observe_latency(float(i), 200_000.0 if i < 2 else 1.0)
        slo.finalize(500.0)
        assert slo.latency.last_burn == pytest.approx(2.0)

    def test_alert_fires_at_threshold_and_counts_metric(self):
        registry = MetricsRegistry()
        fired = []
        slo = SloMonitor(
            SloConfig(latency_goal=0.5, window_us=100.0, burn_alert=1.5),
            metrics=registry,
            on_alert=fired.append,
        )
        for _ in range(4):
            slo.observe_latency(10.0, 1e9)  # all bad: burn 2.0 >= 1.5
        slo.observe_latency(250.0, 1.0)  # rolls past window 0, closing it
        assert len(slo.alerts) == 1
        assert fired == [{"objective": "latency", "window": 0, "burn": 2.0}]
        assert registry.value("slo_alerts_total", objective="latency") == 1

    def test_quiet_window_does_not_alert(self):
        slo = SloMonitor(SloConfig(window_us=100.0))
        slo.observe_latency(10.0, 1.0)
        slo.observe_latency(350.0, 1.0)  # two empty windows roll past
        slo.finalize(350.0)
        assert slo.alerts == []
        assert slo.windows_closed >= 3

    def test_alert_log_is_bounded(self):
        slo = SloMonitor(
            SloConfig(latency_goal=0.5, window_us=10.0, max_alerts=3)
        )
        for window in range(8):
            slo.observe_latency(window * 10.0, 1e9)
        slo.finalize(90.0)
        assert len(slo.alerts) == 3
        # Alerts beyond the bound still count in the summary totals.
        assert slo.windows_closed >= 8

    def test_server_faults_burn_error_budget_client_faults_do_not(self):
        slo = SloMonitor(SloConfig(error_goal=0.5, window_us=1e9))
        assert "backpressure" in SERVER_FAULT_REASONS
        slo.observe_error(1.0, True)
        slo.observe_error(2.0, False)
        slo.finalize(3.0)
        assert slo.errors.bad == 1 and slo.errors.total == 2
        assert slo.summary()["errors"]["total_burn"] == pytest.approx(1.0)


class TestFlightRecorder:
    def test_ring_is_bounded_and_dump_snapshots_it(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record({"tx": i})
        recorder.trigger("circuit-open", 123.0)
        [dump] = recorder.dumps
        assert dump["reason"] == "circuit-open"
        assert [r["tx"] for r in dump["records"]] == [6, 7, 8, 9]

    def test_dump_retention_is_bounded_but_triggers_keep_counting(self):
        recorder = FlightRecorder(capacity=2, max_dumps=2)
        for i in range(5):
            recorder.trigger(f"incident-{i}", float(i))
        assert recorder.triggered == 5
        assert len(recorder.dumps) == 2
        json.loads(recorder.to_json())  # deterministic, serialisable

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestLifecycleTracker:
    def _commit_one(self, tracker, tx_hash=b"\x11", sender="0xs1", tick=1_000.0):
        tracker.on_admitted("0x" + tx_hash.hex(), sender, 100.0, queue_depth=3)
        tracker.on_block(
            [_FakeEntry(tx_hash)],
            tick,
            _FakeOutcome(5, makespan_us=40.0, latency_us=60.0,
                         tx_latencies_us=[25.0]),
        )

    def test_commit_stamps_monotonic_boundaries(self):
        tracker = LifecycleTracker()
        sink = io.StringIO()
        tracker.sink = sink
        self._commit_one(tracker)
        entry = json.loads(sink.getvalue())
        assert entry["outcome"] == "committed"
        assert entry["phases"]["queue"] == pytest.approx(900.0)
        assert entry["phases"]["execute"] == pytest.approx(25.0)
        assert entry["phases"]["drain"] == pytest.approx(15.0)
        assert entry["phases"]["commit"] == pytest.approx(20.0)
        assert entry["latency_us"] == pytest.approx(960.0)

    def test_retry_provenance_backdates_first_seen(self):
        tracker = LifecycleTracker()
        tracker.on_admitted("0x11", "0xs1", 500.0)
        tracker.note_submission("0x11", 120.0, attempts=3)
        record = tracker.inflight["0x11"]
        assert record.first_seen_us == 120.0
        assert record.attempts == 3
        # Unknown hashes are ignored (shed races are benign).
        tracker.note_submission("0xff", 0.0, attempts=2)

    def test_slow_tx_blames_dominant_phase_and_hot_sender(self):
        tracker = LifecycleTracker(slow_threshold_us=100.0)
        self._commit_one(tracker, tick=5_000.0)  # queue-dominated
        report = tracker.report()
        assert report.slow_txs == 1
        assert report.dominant_slow == {"queue": 1}
        [hot] = report.hot_senders
        assert hot["sender"] == "0xs1" and hot["slow_txs"] == 1

    def test_hot_sender_rollup_folds_into_overflow(self):
        tracker = LifecycleTracker(max_hot_senders=2)
        for i in range(4):
            self._commit_one(tracker, tx_hash=bytes([i + 1]), sender=f"0xs{i}")
        senders = set(tracker.senders)
        assert len(senders) == 3 and "(overflow)" in senders
        assert sum(s.txs for s in tracker.senders.values()) == 4

    def test_window_section_resets_between_windows(self):
        tracker = LifecycleTracker()
        self._commit_one(tracker)
        first = tracker.window_section()
        assert first["committed"] == 1
        assert first["latency_us"]["count"] == 1
        second = tracker.window_section()
        assert second["committed"] == 0
        assert second["latency_us"]["count"] == 0  # empty window is valid
        assert second["latency_us"]["p50"] is None
        json.dumps(second)

    def test_shed_and_rejected_feed_report(self):
        tracker = LifecycleTracker()
        tracker.on_admitted("0x11", "0xs1", 10.0)
        tracker.on_shed("0x11", "expired", 400.0)
        tracker.on_rejected("backpressure", 20.0, retryable=True)
        report = tracker.report()
        assert (report.committed, report.shed, report.rejected) == (0, 1, 1)
        round_tripped = LifecycleReport.from_dict(report.as_dict())
        assert round_tripped.describe() == report.describe()

    def test_trace_lanes_and_counter_samples(self):
        tracker = LifecycleTracker(trace=True)
        self._commit_one(tracker)
        tracker.sample_gauges(1_500.0, depth=7, circuit_open=True)
        trace = tracker.to_chrome_trace()
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["name"] == "thread_name"
        }
        # Zero-width phases (instant admission, no retry) emit no span, so
        # only the lanes that carried time appear.
        assert names == {"lane:queue", "lane:execute", "lane:drain", "lane:commit"}
        assert names <= {f"lane:{p}" for p in WATERFALL_PHASES}
        counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
        # The recorder adds its own "busy workers" track on top.
        assert {"mempool depth", "circuit open"} <= counters

    def test_untraced_tracker_has_no_trace_cost(self):
        tracker = LifecycleTracker()
        tracker.sample_gauges(1.0, depth=1, circuit_open=False)
        assert tracker.trace is None
        assert tracker.to_chrome_trace() is None

    def test_incident_triggers_recorder_and_counter(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        tracker = LifecycleTracker(metrics=registry, recorder=recorder)
        tracker.on_incident("circuit-open", 42.0)
        assert recorder.triggered == 1
        assert registry.value(
            "lifecycle_incidents_total", kind="circuit-open"
        ) == 1


class TestServingAttribution:
    def test_collect_and_render(self):
        tracker = LifecycleTracker(slow_threshold_us=10.0)
        tracker.on_admitted("0x11", "0xs1", 0.0)
        tracker.on_block(
            [_FakeEntry(b"\x11")],
            900.0,
            _FakeOutcome(1, makespan_us=10.0, latency_us=12.0,
                         tx_latencies_us=[5.0]),
        )
        section = collect_serving_attribution(tracker)
        assert section["slow_txs"] == 1
        table = hot_sender_table(section["hot_senders"])
        # Renders with the 0x prefix stripped.
        assert "s1" in table and "Hot-sender" in table


class TestLabelCardinalityGuard:
    def test_overflow_bucket_after_limit(self):
        registry = MetricsRegistry(label_limit=2)
        registry.counter("hits", key="a").inc()
        registry.counter("hits", key="b").inc()
        registry.counter("hits", key="c").inc(5)
        registry.counter("hits", key="d").inc(2)
        exported = registry.as_dict()
        assert exported[f"hits{{key={OVERFLOW_LABEL}}}"] == 7
        assert registry.overflow_counts() == {"hits": 2}
        # Folded totals stay correct.
        assert registry.sum_by_name("hits") == 9

    def test_existing_series_hot_path_unaffected_by_limit(self):
        registry = MetricsRegistry(label_limit=1)
        first = registry.counter("hits", key="a")
        assert registry.counter("hits", key="a") is first

    def test_unlabeled_series_never_limited(self):
        registry = MetricsRegistry(label_limit=1)
        registry.counter("one", key="x").inc()
        for name in ("a", "b", "c"):
            registry.counter(name).inc()
        assert registry.overflow_counts() == {}

    def test_limit_is_per_series_name(self):
        registry = MetricsRegistry(label_limit=1)
        registry.counter("first", key="a").inc()
        registry.counter("second", key="a").inc()
        assert registry.overflow_counts() == {}

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            MetricsRegistry(label_limit=0)
