"""The redo phase (Algorithm 1): the §3.2 scenario and every guard family.

The central check everywhere: after a successful redo, the corrected write
set must equal what a full re-execution against the post-conflict state
produces (the paper's Lemma 2).
"""

from __future__ import annotations

from repro.contracts import allowance_slot, balance_slot
from repro.core.redo import redo
from repro.core.tracer import SSATracer
from repro.state.keys import balance_key, storage_key

from ..conftest import transfer_from_tx, transfer_tx


def trace_and_redo(world, run_tx, tx, conflicts):
    """Execute tx under the tracer, then redo against ``conflicts``."""
    tracer = SSATracer()
    result = run_tx(world, tx, tracer=tracer)
    assert result.success
    outcome = redo(tracer.log, conflicts)
    return result, outcome, tracer.log


def reference_rerun(world, run_tx, tx, conflicts):
    """Full re-execution with conflicts folded into committed state."""
    for key, value in conflicts.items():
        world.apply({key: value})
    return run_tx(world, tx)


class TestSection32Scenario:
    """tx2 = transferFrom(A, C) conflicting with tx1's update of balances[A]."""

    def _tx2(self, token, alice, bob, carol):
        return transfer_from_tx(bob, token, alice, carol, 200)

    def test_redo_fixes_sender_balance_chain(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx2 = self._tx2(token, alice, bob, carol)
        key_a = storage_key(token, balance_slot(alice))
        # tx1 (conceptually) moved A's balance from 1000 to 700.
        result, outcome, _ = trace_and_redo(world, run_tx, tx2, {key_a: 700})
        assert outcome.success
        assert outcome.updated_writes[key_a] == 500  # 700 - 200

    def test_redo_leaves_recipient_update_untouched(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx2 = self._tx2(token, alice, bob, carol)
        key_a = storage_key(token, balance_slot(alice))
        key_c = storage_key(token, balance_slot(carol))
        result, outcome, _ = trace_and_redo(world, run_tx, tx2, {key_a: 700})
        assert outcome.success
        # C's balance update was conflict-free: not re-executed, not changed.
        assert key_c not in outcome.updated_writes
        assert result.write_set[key_c] == 1200

    def test_redo_matches_full_reexecution(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx2 = self._tx2(token, alice, bob, carol)
        key_a = storage_key(token, balance_slot(alice))
        conflicts = {key_a: 700}
        result, outcome, _ = trace_and_redo(world, run_tx, tx2, dict(conflicts))
        assert outcome.success
        merged = dict(result.write_set)
        merged.update(outcome.updated_writes)

        reference = reference_rerun(world.clone(), run_tx, tx2, conflicts)
        assert reference.success
        assert merged == reference.write_set
        assert reference.gas_used == result.gas_used  # gas-flow held

    def test_constraint_guard_aborts_when_balance_insufficient(
        self, world, run_tx, token, alice, bob, carol
    ):
        """The paper's §3.2 abort case: after tx1, A cannot cover tx2."""
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx2 = self._tx2(token, alice, bob, carol)
        key_a = storage_key(token, balance_slot(alice))
        _, outcome, _ = trace_and_redo(world, run_tx, tx2, {key_a: 100})
        assert not outcome.success
        assert "ASSERT_EQ" in outcome.reason or "GUARD" in outcome.reason

    def test_redo_counts_are_small(self, world, run_tx, token, alice, bob, carol):
        """Operation-level selling point: the slice is a handful of entries,
        not the whole transaction (paper: ~7 entries ≈ 0.3%)."""
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx2 = self._tx2(token, alice, bob, carol)
        key_a = storage_key(token, balance_slot(alice))
        result, outcome, log = trace_and_redo(world, run_tx, tx2, {key_a: 700})
        assert outcome.success
        assert outcome.reexecuted < len(log.entries) / 2
        assert outcome.reexecuted < result.ops_executed / 5


class TestGuardFamilies:
    def test_allowance_conflict_redo(self, world, run_tx, token, alice, bob, carol):
        world.set_storage(token, allowance_slot(alice, bob), 500)
        tx = transfer_from_tx(bob, token, alice, carol, 200)
        key = storage_key(token, allowance_slot(alice, bob))
        result, outcome, _ = trace_and_redo(world, run_tx, tx, {key: 400})
        assert outcome.success
        assert outcome.updated_writes[key] == 200

    def test_allowance_guard_violation_aborts(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 500)
        tx = transfer_from_tx(bob, token, alice, carol, 200)
        key = storage_key(token, allowance_slot(alice, bob))
        _, outcome, _ = trace_and_redo(world, run_tx, tx, {key: 100})
        assert not outcome.success

    def test_gas_flow_violation_zero_to_nonzero(
        self, world, run_tx, token, alice, bob
    ):
        """bob had no tokens: the credit SSTORE was priced as zero->nonzero.
        If a conflicting tx gives bob tokens first, the same store becomes
        nonzero->nonzero (cheaper) — the gas-flow guard must abort."""
        key_b = storage_key(token, balance_slot(bob))
        world.set_storage(token, balance_slot(bob), 0)
        tx = transfer_tx(alice, token, bob, 100)
        _, outcome, _ = trace_and_redo(world, run_tx, tx, {key_b: 5})
        assert not outcome.success
        assert "gas-flow" in outcome.reason

    def test_gas_flow_ok_when_zeroness_unchanged(
        self, world, run_tx, token, alice, bob
    ):
        key_b = storage_key(token, balance_slot(bob))
        tx = transfer_tx(alice, token, bob, 100)  # bob already has 1000
        result, outcome, _ = trace_and_redo(world, run_tx, tx, {key_b: 999})
        assert outcome.success
        assert outcome.updated_writes[key_b] == 1099

    def test_intrinsic_balance_conflict(self, world, run_tx, alice, bob):
        """Native transfers conflict through intrinsic ILOAD/ISTORE chains."""
        from repro.evm.message import Transaction

        tx = Transaction(sender=alice, to=bob, value=100, gas_limit=21_000)
        key = balance_key(bob)
        result, outcome, _ = trace_and_redo(world, run_tx, tx, {key: 12345})
        assert outcome.success
        assert outcome.updated_writes[key] == 12445

    def test_intrinsic_guard_violation(self, world, run_tx, alice, bob):
        from repro.evm.message import Transaction

        tx = Transaction(sender=alice, to=bob, value=100, gas_limit=21_000)
        # The sender's balance collapses below the upfront requirement.
        _, outcome, _ = trace_and_redo(
            world, run_tx, tx, {balance_key(alice): 10}
        )
        assert not outcome.success

    def test_non_redoable_log_fails_fast(self, world, run_tx, token, alice, bob):
        tracer = SSATracer()
        result = run_tx(world, transfer_tx(alice, token, bob, 1), tracer=tracer)
        assert result.success
        tracer.log.redoable = False
        outcome = redo(tracer.log, {balance_key(alice): 0})
        assert not outcome.success
        assert "reverted frame" in outcome.reason

    def test_empty_conflicts_is_trivial_success(
        self, world, run_tx, token, alice, bob
    ):
        tracer = SSATracer()
        run_tx(world, transfer_tx(alice, token, bob, 1), tracer=tracer)
        outcome = redo(tracer.log, {})
        assert outcome.success
        assert outcome.reexecuted == 0


class TestLogRewrite:
    def test_event_payload_rewritten_by_redo(self, amm_world, run_tx, alice):
        """An AMM swap's Transfer event carries amountOut (reserve-derived):
        redo must rewrite the recorded log data (LOGDATA entries)."""
        from repro.contracts import encode_call
        from repro.contracts.abi import event_topic
        from repro.evm.message import Transaction

        world, pair, token0, token1 = amm_world
        tx = Transaction(
            sender=alice,
            to=pair,
            data=encode_call("swap(uint256,uint256,address)", 10**6, 1, alice),
            gas_limit=800_000,
        )
        tracer = SSATracer()
        result = run_tx(world, tx, tracer=tracer)
        assert result.success
        transfer_topic = event_topic("Transfer(address,address,uint256)")
        payout_log = [
            log for log in result.logs if log.topics[0] == transfer_topic
        ][-1]
        original_amount = int.from_bytes(payout_log.data, "big")

        # Another swap changed the reserves before this one commits.
        reserve_out_key = storage_key(pair, 3)
        conflicts = {reserve_out_key: 10**12 - 10**9}
        outcome = redo(tracer.log, conflicts)
        assert outcome.success
        new_amount = int.from_bytes(payout_log.data, "big")
        assert new_amount != original_amount

        # Cross-check the rewritten amount against a full re-execution.
        reference = reference_rerun(world.clone(), run_tx, tx, conflicts)
        reference_log = [
            log for log in reference.logs if log.topics[0] == transfer_topic
        ][-1]
        assert reference_log.data == payout_log.data

    def test_amm_swap_redo_matches_full_rerun(self, amm_world, run_tx, alice):
        from repro.contracts import encode_call
        from repro.evm.message import Transaction

        world, pair, token0, token1 = amm_world
        tx = Transaction(
            sender=alice,
            to=pair,
            data=encode_call("swap(uint256,uint256,address)", 10**6, 1, alice),
            gas_limit=800_000,
        )
        tracer = SSATracer()
        result = run_tx(world, tx, tracer=tracer)
        assert result.success

        conflicts = {storage_key(pair, 2): 10**12 + 10**7,
                     storage_key(pair, 3): 10**12 - 10**7}
        outcome = redo(tracer.log, dict(conflicts))
        assert outcome.success, outcome.reason
        merged = dict(result.write_set)
        merged.update(outcome.updated_writes)

        reference = reference_rerun(world.clone(), run_tx, tx, conflicts)
        assert reference.success
        assert merged == reference.write_set
        assert reference.gas_used == result.gas_used
