"""World state and state views: defaults, journaling, read/write sets, roots."""

from __future__ import annotations

from repro.primitives import make_address
from repro.sim.meter import CostMeter
from repro.state import (
    BlockOverlay,
    StateView,
    WorldState,
    balance_key,
    code_key,
    nonce_key,
    storage_key,
)
from repro.state.keys import default_value, is_storage_key, key_address
from repro.trie import EMPTY_ROOT

A = make_address(1)
B = make_address(2)


class TestStateKeys:
    def test_defaults(self):
        assert default_value(balance_key(A)) == 0
        assert default_value(nonce_key(A)) == 0
        assert default_value(storage_key(A, 5)) == 0
        assert default_value(code_key(A)) == b""

    def test_key_address(self):
        assert key_address(balance_key(A)) == A
        assert key_address(storage_key(B, 9)) == B

    def test_is_storage_key(self):
        assert is_storage_key(storage_key(A, 1))
        assert not is_storage_key(balance_key(A))

    def test_keys_are_distinct_per_kind(self):
        assert balance_key(A) != nonce_key(A)
        assert storage_key(A, 1) != storage_key(A, 2)
        assert storage_key(A, 1) != storage_key(B, 1)


class TestWorldState:
    def test_zero_defaults(self):
        world = WorldState()
        assert world.get_balance(A) == 0
        assert world.get_nonce(A) == 0
        assert world.get_code(A) == b""
        assert world.get_storage(A, 1) == 0

    def test_setters_and_getters(self):
        world = WorldState()
        world.set_balance(A, 10)
        world.set_nonce(A, 3)
        world.set_code(A, b"\x60\x00")
        world.set_storage(A, 7, 99)
        assert world.get_balance(A) == 10
        assert world.get_nonce(A) == 3
        assert world.get_code(A) == b"\x60\x00"
        assert world.get_storage(A, 7) == 99

    def test_apply_write_set(self):
        world = WorldState()
        world.apply({balance_key(A): 5, storage_key(B, 1): 6})
        assert world.get_balance(A) == 5
        assert world.get_storage(B, 1) == 6

    def test_read_charges_meter(self):
        world = WorldState()
        world.set_balance(A, 1)
        meter = CostMeter()
        world.read(balance_key(A), meter)
        assert meter.storage_us > 0
        assert meter.storage_cold_reads == 1
        world.read(balance_key(A), meter)
        assert meter.storage_cold_reads == 1  # second read is warm

    def test_empty_state_root(self):
        assert WorldState().state_root() == EMPTY_ROOT

    def test_state_root_changes_with_content(self):
        world = WorldState()
        root0 = world.state_root()
        world.set_balance(A, 1)
        root1 = world.state_root()
        world.set_storage(A, 1, 2)
        root2 = world.state_root()
        assert len({root0.hex(), root1.hex(), root2.hex()}) == 3

    def test_state_root_ignores_zero_values(self):
        world = WorldState()
        world.set_balance(A, 0)
        world.set_storage(A, 1, 0)
        assert world.state_root() == EMPTY_ROOT

    def test_state_root_is_history_independent(self):
        w1 = WorldState()
        w1.set_balance(A, 5)
        w2 = WorldState()
        w2.set_balance(A, 99)
        w2.set_storage(B, 1, 2)
        w2.set_balance(A, 5)
        w2.set_storage(B, 1, 0)
        assert w1.state_root() == w2.state_root()

    def test_fingerprint_tracks_content(self):
        w1 = WorldState()
        w1.set_balance(A, 5)
        w2 = WorldState()
        w2.set_balance(A, 5)
        assert w1.fingerprint() == w2.fingerprint()
        w2.set_balance(A, 6)
        assert w1.fingerprint() != w2.fingerprint()

    def test_clone_is_isolated_and_cold(self):
        world = WorldState()
        world.set_balance(A, 5)
        world.read(balance_key(A))  # warm the cache
        clone = world.clone()
        assert not clone.read(balance_key(A), CostMeter()) != 5
        assert clone.db.disk_reads == 1  # the clone started cold
        clone.set_balance(A, 9)
        assert world.get_balance(A) == 5


class TestBlockOverlay:
    def test_apply_and_get(self):
        overlay = BlockOverlay()
        overlay.apply({balance_key(A): 7})
        assert overlay.get(balance_key(A)) == 7
        assert balance_key(A) in overlay
        assert overlay.committed_count == 1

    def test_get_default(self):
        sentinel = object()
        assert BlockOverlay().get(balance_key(A), sentinel) is sentinel


class TestStateView:
    def _view(self, world=None, base=None):
        world = world or WorldState()
        return world, StateView(world, base=base, meter=CostMeter())

    def test_read_through_to_world(self):
        world = WorldState()
        world.set_balance(A, 11)
        _, view = self._view(world)
        assert view.read(balance_key(A)) == 11

    def test_read_records_read_set(self):
        world = WorldState()
        world.set_balance(A, 11)
        _, view = self._view(world)
        view.read(balance_key(A))
        assert view.read_set == {balance_key(A): 11}

    def test_own_writes_not_in_read_set(self):
        _, view = self._view()
        view.write(balance_key(A), 5)
        assert view.read(balance_key(A)) == 5
        assert balance_key(A) not in view.read_set

    def test_read_set_records_first_observation(self):
        world = WorldState()
        world.set_storage(A, 1, 10)
        _, view = self._view(world)
        view.read(storage_key(A, 1))
        view.write(storage_key(A, 1), 20)
        view.read(storage_key(A, 1))
        assert view.read_set[storage_key(A, 1)] == 10

    def test_base_overlay_shadows_world(self):
        world = WorldState()
        world.set_balance(A, 1)
        overlay = BlockOverlay()
        overlay.apply({balance_key(A): 2})
        view = StateView(world, base=overlay)
        assert view.read(balance_key(A)) == 2

    def test_plain_dict_base(self):
        view = StateView(WorldState(), base={balance_key(A): 3})
        assert view.read(balance_key(A)) == 3

    def test_write_set_contains_latest_values(self):
        _, view = self._view()
        view.write(balance_key(A), 1)
        view.write(balance_key(A), 2)
        assert view.write_set == {balance_key(A): 2}

    def test_journal_revert(self):
        _, view = self._view()
        view.write(balance_key(A), 1)
        mark = view.snapshot()
        view.write(balance_key(A), 2)
        view.write(balance_key(B), 3)
        view.revert_to(mark)
        assert view.write_set == {balance_key(A): 1}
        assert view.read(balance_key(B)) == 0

    def test_nested_reverts(self):
        _, view = self._view()
        m0 = view.snapshot()
        view.write(balance_key(A), 1)
        m1 = view.snapshot()
        view.write(balance_key(A), 2)
        view.revert_to(m1)
        assert view.read(balance_key(A)) == 1
        view.revert_to(m0)
        assert view.read(balance_key(A)) == 0
        assert view.write_set == {}

    def test_read_after_revert_hits_committed_again(self):
        world = WorldState()
        world.set_storage(A, 1, 7)
        _, view = self._view(world)
        mark = view.snapshot()
        view.write(storage_key(A, 1), 99)
        view.revert_to(mark)
        assert view.read(storage_key(A, 1)) == 7

    def test_peek_committed_skips_read_set(self):
        world = WorldState()
        world.set_balance(A, 4)
        _, view = self._view(world)
        assert view.peek_committed(balance_key(A)) == 4
        assert view.read_set == {}

    def test_warm_tracking(self):
        _, view = self._view()
        key = storage_key(A, 1)
        assert not view.is_warm(key)
        view.mark_warm(key)
        assert view.is_warm(key)

    def test_discard_writes(self):
        _, view = self._view()
        view.write(balance_key(A), 1)
        view.discard_writes()
        assert view.write_set == {}
