"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.txs == 160
        assert args.threads == 16

    def test_experiment_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonsense"])

    def test_all_experiment_names_parse(self):
        from repro.cli import EXPERIMENTS

        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name


class TestCommands:
    def test_compare_small(self, capsys):
        code = main(
            ["compare", "--txs", "12", "--accounts", "60", "--threads", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelevm" in out
        assert "speedup" in out

    def test_inspect_prints_a_log(self, capsys):
        code = main(["inspect", "--tx-index", "0", "--accounts", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ILOAD" in out
        assert "redo" in out

    def test_replay_validates_roots(self, capsys):
        code = main(
            ["replay", "--count", "1", "--txs", "10", "--accounts", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "root" in out

    def test_replay_deterministic(self, capsys):
        argv = ["replay", "--count", "1", "--txs", "8", "--accounts", "40"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
