"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.txs == 160
        assert args.threads == 16

    def test_experiment_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonsense"])

    def test_all_experiment_names_parse(self):
        from repro.cli import EXPERIMENTS

        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.executor == "parallelevm"
        assert args.trace is None
        assert args.metrics_json is None

    def test_run_validates_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "nonsense"])

    def test_all_run_executor_names_parse(self):
        from repro.cli import RUN_EXECUTORS

        for name in RUN_EXECUTORS:
            args = build_parser().parse_args(["run", "--executor", name])
            assert args.executor == name

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 0
        assert args.blocks == 5
        assert not args.shrink
        assert args.dump is None

    def test_certify_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.blocks == 50
        assert not args.self_test


class TestCommands:
    def test_compare_small(self, capsys):
        code = main(
            ["compare", "--txs", "12", "--accounts", "60", "--threads", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelevm" in out
        assert "speedup" in out

    def test_inspect_prints_a_log(self, capsys):
        code = main(["inspect", "--tx-index", "0", "--accounts", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ILOAD" in out
        assert "redo" in out

    def test_replay_validates_roots(self, capsys):
        code = main(
            ["replay", "--count", "1", "--txs", "10", "--accounts", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "root" in out

    def test_run_prints_report_and_writes_artifacts(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "--executor", "parallelevm",
                "--txs", "12",
                "--accounts", "60",
                "--threads", "4",
                "--trace", str(trace_path),
                "--metrics-json", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "Worker utilization" in out
        assert "commit-point stall" in out

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans

        metrics = json.loads(metrics_path.read_text())
        assert metrics["threads"] == 4
        assert metrics["makespan_us"] > 0
        # Every span's duration is accounted to exactly one phase series.
        phase_total = sum(
            v for k, v in metrics.items() if k.startswith("phase_time_us{")
        )
        assert phase_total == pytest.approx(metrics["busy_us_total"])
        assert sum(
            v for k, v in metrics.items() if k.startswith("tasks_total{")
        ) == len(spans)

    def test_run_serial_executor(self, capsys):
        code = main(
            ["run", "--executor", "serial", "--txs", "8", "--accounts", "40"]
        )
        assert code == 0
        assert "serial" in capsys.readouterr().out

    def test_fuzz_small(self, capsys):
        code = main(["fuzz", "--blocks", "1", "--txs", "10", "--threads", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed 0: ok" in out
        assert "Serializability certification" in out

    def test_replay_deterministic(self, capsys):
        argv = ["replay", "--count", "1", "--txs", "8", "--accounts", "40"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
