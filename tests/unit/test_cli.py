"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.txs == 160
        assert args.threads == 16

    def test_experiment_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonsense"])

    def test_all_experiment_names_parse(self):
        from repro.cli import EXPERIMENTS

        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.executor == "parallelevm"
        assert args.trace is None
        assert args.metrics_json is None

    def test_run_validates_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "nonsense"])

    def test_all_run_executor_names_parse(self):
        from repro.cli import RUN_EXECUTORS

        for name in RUN_EXECUTORS:
            args = build_parser().parse_args(["run", "--executor", name])
            assert args.executor == name

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 0
        assert args.blocks == 5
        assert not args.shrink
        assert args.dump is None

    def test_certify_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.blocks == 50
        assert not args.self_test

    def test_replay_durability_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.durable_dir is None
        assert args.checkpoint_interval == 0

    def test_recover_requires_a_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])
        args = build_parser().parse_args(["recover", "--dir", "wal"])
        assert args.dir == "wal"
        assert args.accounts == 120
        assert not args.strict

    def test_crashfuzz_defaults(self):
        args = build_parser().parse_args(["crashfuzz"])
        assert args.seed == 0
        assert args.blocks == 2
        assert args.checkpoint_interval == 1
        assert not args.pipeline
        assert not args.no_reorg
        assert args.dump is None

    def test_crashfuzz_pipeline_flag(self):
        args = build_parser().parse_args(["crashfuzz", "--pipeline"])
        assert args.pipeline

    def test_replicate_defaults(self):
        args = build_parser().parse_args(["replicate"])
        assert args.seed == 0
        assert args.sweeps == 1
        assert args.txs == 6
        assert args.warmup == 2
        assert args.replicas == 2
        assert args.heartbeat_us == 150_000.0
        assert args.out is None

    def test_replicate_overrides(self):
        args = build_parser().parse_args(
            ["replicate", "--seed", "3", "--sweeps", "2", "--replicas", "3",
             "--heartbeat-us", "50000", "--out", "rep.jsonl"]
        )
        assert args.seed == 3
        assert args.sweeps == 2
        assert args.replicas == 3
        assert args.heartbeat_us == 50_000.0
        assert args.out == "rep.jsonl"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8545
        assert args.executor == "parallelevm"
        assert args.blocks == 0
        assert args.block_txs == 24
        assert args.interval_us == 50_000.0
        assert args.capacity == 2048
        assert args.sender_quota == 16

    def test_serve_validates_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "nonsense"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.blocks == 40
        assert args.executor == "parallelevm"
        assert args.rate == 1.0
        assert args.spike == 1.0
        assert args.slowdown == 1.0
        assert args.scenario is None
        assert args.out is None
        assert args.report_json is None
        assert not args.quiet

    def test_loadgen_knobs_parse(self):
        args = build_parser().parse_args(
            [
                "loadgen", "--scenario", "traffic-spike", "--blocks", "12",
                "--seed", "7", "--out", "t.jsonl", "--report-json", "r.json",
                "--quiet",
            ]
        )
        assert args.scenario == "traffic-spike"
        assert args.blocks == 12
        assert args.seed == 7
        assert args.out == "t.jsonl"
        assert args.report_json == "r.json"
        assert args.quiet

    def test_soak_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.blocks == 200
        assert args.window == 20
        assert args.executor == "parallelevm"
        assert args.threads == 8
        assert args.accounts == 20_000
        assert args.cache_capacity == 100_000
        assert args.scenario is None
        assert args.durable_dir is None
        assert args.out is None
        assert not args.quiet

    def test_soak_validates_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--executor", "nonsense"])


class TestCommands:
    def test_compare_small(self, capsys):
        code = main(
            ["compare", "--txs", "12", "--accounts", "60", "--threads", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallelevm" in out
        assert "speedup" in out

    def test_inspect_prints_a_log(self, capsys):
        code = main(["inspect", "--tx-index", "0", "--accounts", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ILOAD" in out
        assert "redo" in out

    def test_replay_validates_roots(self, capsys):
        code = main(
            ["replay", "--count", "1", "--txs", "10", "--accounts", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "root" in out

    def test_run_prints_report_and_writes_artifacts(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "--executor", "parallelevm",
                "--txs", "12",
                "--accounts", "60",
                "--threads", "4",
                "--trace", str(trace_path),
                "--metrics-json", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "Worker utilization" in out
        assert "commit-point stall" in out

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans

        metrics = json.loads(metrics_path.read_text())
        assert metrics["threads"] == 4
        assert metrics["makespan_us"] > 0
        # Every span's duration is accounted to exactly one phase series.
        phase_total = sum(
            v for k, v in metrics.items() if k.startswith("phase_time_us{")
        )
        assert phase_total == pytest.approx(metrics["busy_us_total"])
        assert sum(
            v for k, v in metrics.items() if k.startswith("tasks_total{")
        ) == len(spans)

    def test_run_serial_executor(self, capsys):
        code = main(
            ["run", "--executor", "serial", "--txs", "8", "--accounts", "40"]
        )
        assert code == 0
        assert "serial" in capsys.readouterr().out

    def test_fuzz_small(self, capsys):
        code = main(["fuzz", "--blocks", "1", "--txs", "10", "--threads", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed 0: ok" in out
        assert "Serializability certification" in out

    def test_replay_deterministic(self, capsys):
        argv = ["replay", "--count", "1", "--txs", "8", "--accounts", "40"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_replay_durable_then_recover(self, capsys, tmp_path):
        wal_dir = str(tmp_path / "wal")
        assert (
            main(
                [
                    "replay",
                    "--count",
                    "2",
                    "--txs",
                    "8",
                    "--accounts",
                    "40",
                    "--durable-dir",
                    wal_dir,
                    "--checkpoint-interval",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "durable commit" in out
        assert "journal:" in out

        assert main(["recover", "--dir", wal_dir, "--accounts", "40"]) == 0
        out = capsys.readouterr().out
        assert "recovered to block" in out
        assert "state fingerprint" in out

    def test_recover_empty_directory_is_genesis(self, capsys, tmp_path):
        assert (
            main(["recover", "--dir", str(tmp_path / "empty"), "--accounts", "40"])
            == 0
        )
        assert "recovered to genesis" in capsys.readouterr().out

    def test_soak_small(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "soak.jsonl"
        code = main(
            [
                "soak",
                "--blocks", "6",
                "--window", "3",
                "--accounts", "200",
                "--txs", "6",
                "--threads", "4",
                "--cache-capacity", "5000",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "soak: parallelevm x4 · 6 blocks" in out
        assert "bounded" in out
        lines = out_path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            snapshot = json.loads(line)
            assert snapshot["throughput"]["blocks"] == 3

    def test_soak_unknown_scenario_is_a_usage_error(self, capsys):
        code = main(
            ["soak", "--blocks", "1", "--accounts", "50", "--txs", "2",
             "--scenario", "nonsense"]
        )
        assert code == 2
        assert "unknown chaos scenario" in capsys.readouterr().err

    def test_crashfuzz_small(self, capsys):
        argv = [
            "crashfuzz",
            "--seed",
            "0",
            "--blocks",
            "1",
            "--txs",
            "6",
            "--threads",
            "4",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "atomic at every site" in out
        assert "reorg round trip" in out
        assert "Durability summary" in out

    def test_crashfuzz_pipeline(self, capsys):
        argv = [
            "crashfuzz", "--seed", "0", "--blocks", "1", "--txs", "6",
            "--threads", "4", "--pipeline", "--no-reorg",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pipelined crash sweep" in out
        assert "no speculative state survived" in out

    def test_replicate_small(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "replicate.jsonl"
        argv = [
            "replicate", "--seed", "0", "--sweeps", "1", "--txs", "4",
            "--warmup", "1", "--threads", "4", "--out", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "RPO=0" not in out  # JSONL on stdout, prose only on failure
        assert "Replication summary" in out
        lines = out_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["ok"] is True
        assert record["failovers"] == record["sites"] * record["executors"]
        assert record["stale_frames_rejected"] > 0
        assert record["divergences"] == []
        assert record["min_failover_us"] >= 150_000.0

    def test_loadgen_small(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "ingress.jsonl"
        report_path = tmp_path / "ingress.json"
        argv = [
            "loadgen",
            "--blocks", "8",
            "--txs", "8",
            "--accounts", "64",
            "--clients", "4",
            "--threads", "4",
            "--seed", "2",
            "--quiet",
            "--out", str(out_path),
            "--report-json", str(report_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "certified: conservation + serial equivalence" in out
        report = json.loads(report_path.read_text())
        assert report["blocks_committed"] > 0
        assert not report["divergences"]
        for line in out_path.read_text().splitlines():
            json.loads(line)

    def test_loadgen_rejects_non_ingress_scenarios(self, capsys):
        assert main(["loadgen", "--scenario", "havoc", "--quiet"]) == 2
        assert "not an ingress scenario" in capsys.readouterr().err
