"""Mempool admission control: stateless validation + stateful prechecks."""

from __future__ import annotations

import pytest

from repro.errors import (
    FeeTooLow,
    InsufficientBalance,
    IntrinsicGasTooLow,
    InvalidSignature,
    MalformedTransaction,
    MempoolFull,
    NonceGapTooWide,
    NonceTooLow,
    ReplacementUnderpriced,
    SenderQuotaExceeded,
    TransactionTooLarge,
    WrongChainId,
)
from repro.evm.message import Transaction
from repro.mempool import (
    Mempool,
    MempoolConfig,
    decode_wire_transaction,
    pseudo_signature,
    transaction_hash,
    wire_transaction,
)
from repro.workloads import ChainSpec, build_chain


@pytest.fixture(scope="module")
def chain():
    return build_chain(ChainSpec(accounts=16, tokens=1, amm_pairs=0, seed=7))


def transfer(
    chain,
    sender_index: int = 0,
    nonce: int = 0,
    gas_price: int = 10,
    value: int = 1_000,
    to_index: int = 1,
) -> Transaction:
    return Transaction(
        sender=chain.accounts[sender_index],
        to=chain.accounts[to_index],
        value=value,
        data=b"",
        gas_limit=21_000,
        gas_price=gas_price,
        nonce=nonce,
    )


class TestWireCodec:
    def test_round_trip_preserves_every_field(self, chain):
        tx = transfer(chain, nonce=3, gas_price=42, value=9_999)
        wire = wire_transaction(tx)
        decoded = decode_wire_transaction(wire)
        for name in ("sender", "to", "value", "data", "gas_limit", "gas_price", "nonce"):
            assert getattr(decoded, name) == getattr(tx, name), name

    def test_hash_is_deterministic_and_index_free(self, chain):
        tx = transfer(chain)
        again = Transaction(**{
            f: getattr(tx, f)
            for f in ("sender", "to", "value", "data", "gas_limit", "gas_price", "nonce")
        }, tx_index=99)
        assert transaction_hash(tx) == transaction_hash(again)
        assert transaction_hash(tx) != transaction_hash(transfer(chain, nonce=1))

    def test_missing_required_field_is_malformed(self, chain):
        wire = wire_transaction(transfer(chain))
        del wire["sender"]
        with pytest.raises(MalformedTransaction):
            decode_wire_transaction(wire)

    def test_bad_hex_is_malformed(self, chain):
        wire = wire_transaction(transfer(chain))
        wire["sender"] = "0xzz"
        with pytest.raises(MalformedTransaction):
            decode_wire_transaction(wire)

    def test_negative_value_is_malformed(self, chain):
        wire = wire_transaction(transfer(chain))
        wire["value"] = -1
        with pytest.raises(MalformedTransaction):
            decode_wire_transaction(wire)

    def test_wrong_chain_id_is_typed(self, chain):
        wire = wire_transaction(transfer(chain))
        wire["chain_id"] = 1338
        with pytest.raises(WrongChainId) as err:
            decode_wire_transaction(wire)
        assert err.value.code == "wrong-chain-id"

    def test_oversize_calldata_is_typed(self, chain):
        wire = wire_transaction(transfer(chain))
        wire["data"] = "0x" + "ff" * 8192
        with pytest.raises(TransactionTooLarge):
            decode_wire_transaction(wire)

    def test_starved_gas_limit_is_typed(self, chain):
        wire = wire_transaction(transfer(chain))
        wire["gas_limit"] = 100
        with pytest.raises(IntrinsicGasTooLow):
            decode_wire_transaction(wire)

    def test_signature_shape_is_enforced(self, chain):
        tx = transfer(chain)
        wire = wire_transaction(tx)
        del wire["sig"]
        with pytest.raises(InvalidSignature):
            decode_wire_transaction(wire)
        wire = wire_transaction(tx)
        wire["sig"] = "0x" + "ab" * 12
        with pytest.raises(InvalidSignature):
            decode_wire_transaction(wire)
        # The deterministic pseudo-signature passes the shape checks.
        assert len(pseudo_signature(tx)) == 65
        decode_wire_transaction(wire_transaction(tx, sig=pseudo_signature(tx)))


class TestPoolAdmission:
    def pool(self, chain, **overrides) -> Mempool:
        return Mempool(MempoolConfig(**overrides), chain.world)

    def test_admit_then_select_orders_by_fee(self, chain):
        pool = self.pool(chain)
        cheap = transfer(chain, sender_index=0, gas_price=2)
        rich = transfer(chain, sender_index=2, gas_price=50)
        pool.add(cheap)
        pool.add(rich)
        entries = pool.select(4, 30_000_000)
        assert [e.gas_price for e in entries] == [50, 2]
        assert len(pool) == 2  # selection does not evict; commit does
        pool.mark_committed(entries)
        assert len(pool) == 0

    def test_fee_floor(self, chain):
        pool = self.pool(chain, min_gas_price=5)
        with pytest.raises(FeeTooLow) as err:
            pool.add(transfer(chain, gas_price=4))
        assert err.value.retryable

    def test_nonce_too_low_and_gap_window(self, chain):
        pool = self.pool(chain, max_nonce_gap=2)
        from repro.state.keys import nonce_key

        bumped = build_chain(ChainSpec(accounts=8, tokens=1, amm_pairs=0, seed=3))
        bumped.world.apply({nonce_key(bumped.accounts[3]): 5})
        bumped_pool = Mempool(MempoolConfig(), bumped.world)
        with pytest.raises(NonceTooLow):
            bumped_pool.add(transfer(bumped, sender_index=3, nonce=4))
        with pytest.raises(NonceGapTooWide):
            pool.add(transfer(chain, sender_index=4, nonce=3))
        # Contiguous fills keep extending the window.
        pool.add(transfer(chain, sender_index=4, nonce=0))
        pool.add(transfer(chain, sender_index=4, nonce=1))
        pool.add(transfer(chain, sender_index=4, nonce=3))

    def test_replacement_needs_a_fee_bump(self, chain):
        pool = self.pool(chain, replacement_bump_pct=10.0)
        pool.add(transfer(chain, sender_index=5, gas_price=100))
        with pytest.raises(ReplacementUnderpriced):
            pool.add(transfer(chain, sender_index=5, gas_price=105))
        pool.add(transfer(chain, sender_index=5, gas_price=110))
        assert len(pool) == 1
        assert pool.select(1, 30_000_000)[0].gas_price == 110

    def test_per_sender_quota(self, chain):
        pool = self.pool(chain, per_sender_quota=2)
        pool.add(transfer(chain, sender_index=6, nonce=0))
        pool.add(transfer(chain, sender_index=6, nonce=1))
        with pytest.raises(SenderQuotaExceeded):
            pool.add(transfer(chain, sender_index=6, nonce=2))

    def test_cumulative_balance_cover(self, chain):
        pool = self.pool(chain, per_sender_quota=8, max_nonce_gap=8)
        # 1000 ETH funded; two txs of 600 ETH each cannot both be covered.
        huge = 600 * 10**18
        pool.add(transfer(chain, sender_index=7, nonce=0, value=huge))
        with pytest.raises(InsufficientBalance):
            pool.add(transfer(chain, sender_index=7, nonce=1, value=huge))

    def test_capacity_displaces_cheapest_else_rejects(self, chain):
        pool = self.pool(chain, capacity=2)
        pool.add(transfer(chain, sender_index=0, gas_price=10))
        pool.add(transfer(chain, sender_index=2, gas_price=20))
        with pytest.raises(MempoolFull):
            pool.add(transfer(chain, sender_index=3, gas_price=10))
        # A strictly higher fee displaces the cheapest pooled tx.
        kept = pool.add(transfer(chain, sender_index=3, gas_price=30))
        assert len(pool) == 2
        assert kept in pool
        prices = sorted(e.gas_price for e in pool.select(2, 30_000_000))
        assert prices == [20, 30]

    def test_ttl_shedding_only_fires_above_the_high_watermark(self, chain):
        pool = self.pool(
            chain, capacity=4, high_watermark=0.5, low_watermark=0.25,
            tx_ttl_us=100.0,
        )
        pool.add(transfer(chain, sender_index=0, gas_price=1), now_us=0.0)
        assert pool.shed_expired(1_000.0) == []  # depth 1 < high watermark 2
        pool.add(transfer(chain, sender_index=2, gas_price=9), now_us=0.0)
        pool.add(transfer(chain, sender_index=3, gas_price=5), now_us=0.0)
        shed = pool.shed_expired(1_000.0)
        # Sheds cheapest-first down to the low watermark (1 entry).
        assert [e.gas_price for e in shed] == [1, 5]
        assert len(pool) == 1

    def test_drop_stale_after_external_commit(self, chain):
        chain2 = build_chain(ChainSpec(accounts=8, tokens=1, amm_pairs=0, seed=9))
        pool = Mempool(MempoolConfig(), chain2.world)
        pool.add(transfer(chain2, sender_index=0, nonce=0))
        pool.add(transfer(chain2, sender_index=0, nonce=1))
        from repro.state.keys import nonce_key

        chain2.world.apply({nonce_key(chain2.accounts[0]): 1})
        stale = pool.drop_stale()
        assert [e.nonce for e in stale] == [0]
        assert len(pool) == 1
