"""The pipeline coordinator's timeline math and the static read predictor.

Everything here is pure simulated-time arithmetic: fake block results with
hand-picked makespans and read/write sets drive the coordinator, so every
expected clock value can be computed by hand.  The predictor tests check
the static decode against transactions built with the real ABI encoder and
against what a serial execution actually reads.
"""

from __future__ import annotations

from repro.bench.harness import standard_chain, standard_workload
from repro.concurrency import SerialExecutor
from repro.concurrency.base import block_read_keys
from repro.contracts.abi import encode_address, encode_call
from repro.contracts.erc20 import balance_slot
from repro.evm.message import Transaction
from repro.obs import MetricsRegistry, TraceRecorder
from repro.pipeline import (
    COMMIT_LANE,
    PipelineConfig,
    PipelineCoordinator,
    predicted_read_keys,
)
from repro.state.keys import balance_key, nonce_key, storage_key


class FakeTxResult:
    def __init__(self, read_set):
        self.read_set = read_set


class FakeBlockResult:
    """Just enough of a BlockResult for the coordinator."""

    def __init__(self, makespan_us, writes=None, reads=None):
        self.makespan_us = makespan_us
        self.writes = writes or {}
        self.tx_results = [FakeTxResult(set(reads or []))]


# ------------------------------------------------------------- predictor


class TestPredictedReadKeys:
    def _transfer(self, sender, token, recipient, amount=5):
        return Transaction(
            sender=sender,
            to=token,
            data=encode_call(
                "transfer(address,uint256)", encode_address(recipient), amount
            ),
        )

    def test_erc20_transfer_keys(self):
        sender, token, recipient = b"\x01" * 20, b"\x02" * 20, b"\x03" * 20
        keys = predicted_read_keys([self._transfer(sender, token, recipient)])
        assert balance_key(sender) in keys
        assert nonce_key(sender) in keys
        assert balance_key(token) in keys
        assert storage_key(token, balance_slot(sender)) in keys
        assert storage_key(token, balance_slot(recipient)) in keys

    def test_deterministic_and_deduplicated(self):
        sender, token, recipient = b"\x01" * 20, b"\x02" * 20, b"\x03" * 20
        txs = [
            self._transfer(sender, token, recipient),
            self._transfer(sender, token, recipient, amount=7),
        ]
        first = predicted_read_keys(txs)
        assert first == predicted_read_keys(txs)
        assert len(first) == len(set(first))

    def test_prediction_is_mostly_sound_against_serial_execution(self):
        """Predicted keys are overwhelmingly keys the block actually reads."""
        chain = standard_chain(accounts=64)
        block = standard_workload(chain, 32).block(1)
        predicted = set(predicted_read_keys(block.txs))
        result = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        actual = block_read_keys(result)
        hit = len(predicted & actual)
        assert hit / len(predicted) >= 0.6, (hit, len(predicted))

    def test_short_calldata_and_burns_are_envelope_only(self):
        sender = b"\x01" * 20
        burn = Transaction(sender=sender, to=None, value=1)
        raw = Transaction(sender=sender, to=b"\x02" * 20, data=b"\x01\x02")
        keys = predicted_read_keys([burn, raw])
        assert balance_key(sender) in keys
        assert all(key[0] != "s" for key in keys)  # no storage slots


# ----------------------------------------------------------- coordinator


class TestCoordinatorTimeline:
    def test_synchronous_config_matches_serial_accounting(self):
        """prefetch+async off: every block advances by makespan + commit."""
        coord = PipelineCoordinator(
            PipelineConfig(prefetch=False, async_commit=False)
        )
        for number in range(3):
            timing = coord.account(number, FakeBlockResult(100.0), 20.0)
            assert timing.advance_us == 120.0
            assert timing.latency_us == 120.0
        assert coord.clock_us == 360.0
        assert coord.saved_us == 0.0

    def test_async_commit_overlaps_disjoint_blocks(self):
        coord = PipelineCoordinator(PipelineConfig(prefetch=False))
        first = coord.account(
            0, FakeBlockResult(100.0, writes={"a": 1}), 50.0, publish_us=10.0
        )
        assert (first.exec_start_us, first.commit_end_us) == (0.0, 150.0)
        # Block 1 reads nothing of block 0's write set: execution starts
        # the moment the exec lane frees, fully under block 0's commit.
        second = coord.account(
            1, FakeBlockResult(100.0, reads={"b"}), 50.0, publish_us=10.0
        )
        assert second.exec_start_us == 100.0
        assert second.barrier_stall_us == 0.0
        # The commit lane serialises: block 1 commits after block 0.
        assert second.commit_start_us == 200.0
        assert second.advance_us == 100.0  # the commit cost is hidden
        assert coord.saved_us == 50.0

    def test_read_barrier_waits_for_publish_fraction_only(self):
        coord = PipelineCoordinator(PipelineConfig(prefetch=False))
        coord.account(
            0,
            FakeBlockResult(100.0, writes={"a": 1, "b": 2}),
            50.0,
            publish_us=40.0,
        )
        # Block 1 reads "a" — rank 0 of 2 published keys, so it waits
        # until commit_start (100) + 40 * 1/2 = 120, not the full commit.
        second = coord.account(
            1, FakeBlockResult(10.0, reads={"a"}), 50.0, publish_us=40.0
        )
        assert second.exec_start_us == 120.0
        assert second.barrier_stall_us == 20.0
        assert second.barrier_keys == 1

    def test_memory_only_commit_never_barriers(self):
        """publish_us=0 (no durability): writes publish at the per-tx
        commit point inside the makespan, so readers never stall."""
        coord = PipelineCoordinator(PipelineConfig(prefetch=False))
        coord.account(0, FakeBlockResult(100.0, writes={"a": 1}), 50.0)
        second = coord.account(1, FakeBlockResult(10.0, reads={"a"}), 50.0)
        assert second.barrier_stall_us == 0.0
        assert second.exec_start_us == 100.0

    def test_prefetch_warms_cache_and_lands_on_prefetch_lane(self):
        chain = standard_chain(accounts=16)
        world = chain.fresh_world()
        sender, token, recipient = b"\x01" * 20, b"\x02" * 20, b"\x03" * 20
        tx = Transaction(
            sender=sender,
            to=token,
            data=encode_call(
                "transfer(address,uint256)", encode_address(recipient), 1
            ),
        )
        coord = PipelineCoordinator(PipelineConfig(io_depth=2))
        warmed = coord.prefetch(world, [tx])
        assert warmed == len(predicted_read_keys([tx]))
        expected_us = warmed * world.db.disk_latency_us / 2
        assert coord.prefetch_free_at == expected_us
        # Warmed again: everything is already cached, nothing to do.
        assert coord.prefetch(world, [tx]) == 0
        # The warmed keys now read as cache hits.
        before = world.db.cache_reads
        world.read(balance_key(sender))
        assert world.db.cache_reads == before + 1

    def test_prefetch_stall_charged_when_warm_outruns_exec_lane(self):
        chain = standard_chain(accounts=16)
        world = chain.fresh_world()
        tx = Transaction(sender=b"\x01" * 20, to=b"\x02" * 20)
        coord = PipelineCoordinator(PipelineConfig(io_depth=1))
        coord.prefetch(world, [tx])
        done = coord.prefetch_free_at
        assert done > 0.0
        timing = coord.account(0, FakeBlockResult(100.0), 10.0)
        assert timing.exec_start_us == done
        assert timing.prefetch_stall_us == done

    def test_metrics_and_commit_lane_spans_published(self):
        registry = MetricsRegistry()
        trace = TraceRecorder()
        coord = PipelineCoordinator(
            PipelineConfig(prefetch=False), metrics=registry, trace=trace
        )
        coord.account(0, FakeBlockResult(100.0, writes={"a": 1}), 50.0, 10.0)
        coord.account(1, FakeBlockResult(100.0, reads={"a"}), 50.0, 10.0)
        assert registry.counter("pipeline_blocks").value == 2
        assert registry.counter("pipeline_serial_us").value == 300.0
        assert registry.counter("pipeline_advance_us").value == coord.clock_us
        assert registry.counter("pipeline_barrier_blocks").value == 1
        lanes = {span.kind for span in trace.spans}
        assert lanes == {"exec-lane", "commit-lane"}
        commit_spans = [
            span for span in trace.spans if span.worker_id == COMMIT_LANE
        ]
        assert [span.kind for span in commit_spans] == ["commit-lane"] * 2
