"""Merkle proofs: inclusion, exclusion, tamper detection, properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrieError
from repro.trie import MerklePatriciaTrie
from repro.trie.proof import get_proof, verify_proof


def build(pairs: dict[bytes, bytes]) -> MerklePatriciaTrie:
    trie = MerklePatriciaTrie()
    for k, v in pairs.items():
        trie.put(k, v)
    return trie


PAIRS = {
    b"do": b"verb",
    b"dog": b"puppy",
    b"doge": b"coin",
    b"horse": b"stallion",
}


class TestInclusion:
    def test_every_key_provable(self):
        trie = build(PAIRS)
        root = trie.root_hash()
        for key, value in PAIRS.items():
            proof = get_proof(trie, key)
            assert verify_proof(root, key, proof) == value

    def test_single_leaf_trie(self):
        trie = build({b"k": b"v"})
        proof = get_proof(trie, b"k")
        assert verify_proof(trie.root_hash(), b"k", proof) == b"v"

    def test_deep_trie(self):
        pairs = {bytes([i, j]): bytes([i * 16 + j, 1]) for i in range(8) for j in range(8)}
        trie = build(pairs)
        root = trie.root_hash()
        for key in (b"\x00\x00", b"\x03\x05", b"\x07\x07"):
            assert verify_proof(root, key, get_proof(trie, key)) == pairs[key]


class TestExclusion:
    def test_absent_key_verifies_to_none(self):
        trie = build(PAIRS)
        root = trie.root_hash()
        for key in (b"cat", b"doges", b"d", b"horsey"):
            proof = get_proof(trie, key)
            assert verify_proof(root, key, proof) is None

    def test_empty_trie(self):
        trie = MerklePatriciaTrie()
        assert verify_proof(trie.root_hash(), b"any", get_proof(trie, b"any")) is None


class TestTampering:
    def test_flipped_byte_in_node_detected(self):
        trie = build(PAIRS)
        root = trie.root_hash()
        proof = get_proof(trie, b"dog")
        bad = list(proof)
        bad[0] = bad[0][:-1] + bytes([bad[0][-1] ^ 1])
        with pytest.raises(TrieError):
            verify_proof(root, b"dog", bad)

    def test_wrong_root_detected(self):
        trie = build(PAIRS)
        proof = get_proof(trie, b"dog")
        with pytest.raises(TrieError):
            verify_proof(b"\x00" * 32, b"dog", proof)

    def test_truncated_proof_detected(self):
        trie = build(PAIRS)
        root = trie.root_hash()
        proof = get_proof(trie, b"dog")
        if len(proof) > 1:
            with pytest.raises(TrieError):
                verify_proof(root, b"dog", proof[:-1])

    def test_value_cannot_be_forged(self):
        """Swapping in another key's (valid) proof must not prove this key."""
        trie = build(PAIRS)
        root = trie.root_hash()
        other = get_proof(trie, b"horse")
        result = None
        try:
            result = verify_proof(root, b"dog", other)
        except TrieError:
            return  # rejected outright: fine
        assert result != PAIRS[b"dog"]


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=6),
        st.binary(min_size=1, max_size=12),
        min_size=1,
        max_size=25,
    ),
    st.binary(min_size=1, max_size=6),
)
def test_proof_roundtrip_property(pairs, probe):
    """For any trie: every member key proves to its value, and any probe
    key proves to its dict value (or None when absent)."""
    trie = build(pairs)
    root = trie.root_hash()
    for key, value in pairs.items():
        assert verify_proof(root, key, get_proof(trie, key)) == value
    assert verify_proof(root, probe, get_proof(trie, probe)) == pairs.get(probe)
