"""The transaction envelope: nonce, upfront checks, fees, failure semantics."""

from __future__ import annotations

from repro.evm import gas as G
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import make_address
from repro.state import StateView, WorldState
from repro.state.keys import balance_key, nonce_key

SENDER = make_address(1)
RECIPIENT = make_address(2)
ETHER = 10**18


def run(world: WorldState, tx: Transaction):
    view = StateView(world)
    return execute_transaction(view, tx, BlockEnv()), view


def funded_world(balance: int = 10 * ETHER) -> WorldState:
    world = WorldState()
    world.set_balance(SENDER, balance)
    return world


class TestNativeTransfer:
    def test_moves_value(self):
        world = funded_world()
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=100, gas_limit=21_000)
        result, _ = run(world, tx)
        assert result.success
        assert result.write_set[balance_key(RECIPIENT)] == 100

    def test_charges_exactly_intrinsic_gas(self):
        world = funded_world()
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=50_000)
        result, _ = run(world, tx)
        assert result.gas_used == G.GAS_TX

    def test_sender_pays_value_plus_fee(self):
        world = funded_world()
        tx = Transaction(
            sender=SENDER, to=RECIPIENT, value=100, gas_limit=21_000, gas_price=2
        )
        result, _ = run(world, tx)
        expected = 10 * ETHER - 100 - 21_000 * 2
        assert result.write_set[balance_key(SENDER)] == expected

    def test_nonce_bumped(self):
        world = funded_world()
        world.set_nonce(SENDER, 6)
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result, _ = run(world, tx)
        assert result.write_set[nonce_key(SENDER)] == 7

    def test_calldata_intrinsic_cost(self):
        world = funded_world()
        tx = Transaction(
            sender=SENDER, to=RECIPIENT, data=b"\x00\x01", gas_limit=50_000
        )
        result, _ = run(world, tx)
        assert result.gas_used == G.GAS_TX + 4 + 16


class TestFailureModes:
    def test_insufficient_upfront_funds(self):
        world = funded_world(balance=10)  # cannot cover gas_limit * price
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result, _ = run(world, tx)
        assert not result.success
        assert result.error == "insufficient funds"

    def test_intrinsic_gas_exceeds_limit(self):
        world = funded_world()
        tx = Transaction(sender=SENDER, to=RECIPIENT, gas_limit=20_000)
        result, _ = run(world, tx)
        assert not result.success
        assert result.error == "intrinsic gas"

    def test_failed_execution_still_bumps_nonce_and_charges_fee(self):
        from repro.evm.assembler import assemble

        world = funded_world()
        contract = make_address(3)
        world.set_code(contract, assemble("PUSH0 PUSH0 REVERT"))
        tx = Transaction(sender=SENDER, to=contract, gas_limit=100_000)
        result, _ = run(world, tx)
        assert not result.success
        assert result.write_set[nonce_key(SENDER)] == 1
        assert result.write_set[balance_key(SENDER)] < 10 * ETHER

    def test_failed_execution_reverts_value_transfer(self):
        from repro.evm.assembler import assemble

        world = funded_world()
        contract = make_address(3)
        world.set_code(contract, assemble("PUSH0 PUSH0 REVERT"))
        tx = Transaction(sender=SENDER, to=contract, value=500, gas_limit=100_000)
        result, _ = run(world, tx)
        assert not result.success
        assert balance_key(contract) not in result.write_set


class TestResultBookkeeping:
    def test_read_set_includes_sender_account(self):
        world = funded_world()
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result, _ = run(world, tx)
        assert balance_key(SENDER) in result.read_set
        assert nonce_key(SENDER) in result.read_set

    def test_duration_comes_from_meter(self):
        from repro.sim.meter import CostMeter

        world = funded_world()
        meter = CostMeter()
        view = StateView(world, meter=meter)
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result = execute_transaction(view, tx, BlockEnv(), meter=meter)
        assert result.duration_us == meter.total_us > 0

    def test_coinbase_not_touched_per_tx(self):
        # Fee settlement is per block (see concurrency.base.settle_fees):
        # per-transaction coinbase writes would serialise every executor.
        world = funded_world()
        env = BlockEnv(coinbase=make_address(0xC0FFEE))
        view = StateView(world)
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result = execute_transaction(view, tx, env)
        assert balance_key(env.coinbase) not in result.write_set


class TestFeeSettlement:
    def test_settle_fees_does_not_inflate_committed_count(self):
        # Regression: fee settlement used BlockOverlay.apply, counting the
        # once-per-block adjustment as a committed transaction.
        from repro.concurrency.base import overlay_get, settle_fees
        from repro.state.view import BlockOverlay

        world = funded_world()
        env = BlockEnv(coinbase=make_address(0xC0FFEE))
        tx = Transaction(sender=SENDER, to=RECIPIENT, value=1, gas_limit=21_000)
        result, _ = run(world, tx)
        overlay = BlockOverlay()
        overlay.apply(result.write_set)
        assert overlay.committed_count == 1
        settle_fees(overlay, world, [result], env)
        assert overlay.committed_count == 1
        coinbase = balance_key(env.coinbase)
        assert overlay_get(overlay, world, coinbase) == (
            result.gas_used * tx.gas_price
        )

    def test_zero_fee_block_writes_nothing(self):
        from repro.concurrency.base import settle_fees
        from repro.state.view import BlockOverlay

        overlay = BlockOverlay()
        settle_fees(overlay, funded_world(), [], BlockEnv())
        assert len(overlay) == 0
