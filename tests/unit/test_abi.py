"""ABI helpers: selectors, topics, calldata encoding."""

from __future__ import annotations

from repro.contracts.abi import (
    encode_address,
    encode_call,
    encode_uint256,
    event_topic,
    selector,
)
from repro.primitives import make_address


class TestSelectors:
    def test_known_selectors(self):
        assert selector("transfer(address,uint256)") == 0xA9059CBB
        assert selector("transferFrom(address,address,uint256)") == 0x23B872DD
        assert selector("approve(address,uint256)") == 0x095EA7B3
        assert selector("balanceOf(address)") == 0x70A08231

    def test_selector_is_cached_and_stable(self):
        assert selector("totalSupply()") == selector("totalSupply()")

    def test_event_topic_is_full_word(self):
        topic = event_topic("Transfer(address,address,uint256)")
        assert topic == int(
            "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef",
            16,
        )


class TestEncoding:
    def test_uint256_is_32_bytes(self):
        assert encode_uint256(1) == (1).to_bytes(32, "big")
        assert len(encode_uint256(2**255)) == 32

    def test_address_left_padded(self):
        addr = make_address(7)
        encoded = encode_address(addr)
        assert len(encoded) == 32
        assert encoded[:12] == b"\x00" * 12
        assert encoded[12:] == addr

    def test_encode_call_layout(self):
        addr = make_address(9)
        data = encode_call("transfer(address,uint256)", addr, 300)
        assert data[:4] == (0xA9059CBB).to_bytes(4, "big")
        assert data[4:36] == encode_address(addr)
        assert data[36:68] == encode_uint256(300)
        assert len(data) == 68

    def test_encode_call_no_args(self):
        assert encode_call("totalSupply()") == (0x18160DDD).to_bytes(4, "big")

    def test_int_and_address_args_mix(self):
        a, b = make_address(1), make_address(2)
        data = encode_call(
            "transferFrom(address,address,uint256)", a, b, 5
        )
        assert len(data) == 4 + 3 * 32
        assert data[4:36].endswith(a)
        assert data[36:68].endswith(b)
