"""Receipts, blooms and the receipts root."""

from __future__ import annotations

from repro.evm.message import LogRecord, Transaction, TxResult
from repro.primitives import make_address
from repro.state.receipts import (
    Receipt,
    block_bloom,
    bloom_add,
    bloom_contains,
    build_receipts,
    logs_bloom,
    receipts_root,
)

ADDR = make_address(1)


def result(index: int, success: bool = True, gas: int = 21_000, logs=None):
    tx = Transaction(sender=make_address(100), to=ADDR, tx_index=index)
    return TxResult(
        tx=tx, success=success, gas_used=gas, logs=list(logs or [])
    )


class TestBloom:
    def test_added_element_is_contained(self):
        bloom = bloom_add(0, b"hello")
        assert bloom_contains(bloom, b"hello")

    def test_absent_element_usually_not_contained(self):
        bloom = bloom_add(0, b"hello")
        assert not bloom_contains(bloom, b"goodbye")

    def test_empty_bloom_contains_nothing(self):
        assert not bloom_contains(0, b"anything")

    def test_exactly_three_bits_or_fewer(self):
        bloom = bloom_add(0, b"abc")
        assert 1 <= bin(bloom).count("1") <= 3

    def test_logs_bloom_covers_address_and_topics(self):
        log = LogRecord(ADDR, (7, 9), b"payload")
        bloom = logs_bloom([log])
        assert bloom_contains(bloom, ADDR)
        assert bloom_contains(bloom, (7).to_bytes(32, "big"))
        assert bloom_contains(bloom, (9).to_bytes(32, "big"))

    def test_block_bloom_is_union(self):
        r1 = result(0, logs=[LogRecord(ADDR, (1,), b"")])
        r2 = result(1, logs=[LogRecord(ADDR, (2,), b"")])
        union = block_bloom([r1, r2])
        assert bloom_contains(union, (1).to_bytes(32, "big"))
        assert bloom_contains(union, (2).to_bytes(32, "big"))


class TestReceipts:
    def test_cumulative_gas(self):
        receipts = build_receipts([result(0, gas=100), result(1, gas=50)])
        assert [r.cumulative_gas for r in receipts] == [100, 150]

    def test_status_flags(self):
        receipts = build_receipts([result(0, success=False), result(1)])
        assert [r.status for r in receipts] == [0, 1]

    def test_order_follows_tx_index_not_input_order(self):
        receipts = build_receipts([result(1, gas=50), result(0, gas=100)])
        assert [r.cumulative_gas for r in receipts] == [100, 150]

    def test_encoding_roundtrip_shape(self):
        from repro import rlp

        receipt = Receipt(1, 100, 0, [LogRecord(ADDR, (5,), b"xy")])
        decoded = rlp.decode(receipt.encode())
        assert rlp.bytes_to_uint(decoded[0]) == 1
        assert rlp.bytes_to_uint(decoded[1]) == 100
        assert decoded[3][0][0] == ADDR
        assert decoded[3][0][2] == b"xy"


class TestReceiptsRoot:
    def test_deterministic(self):
        results = [result(0), result(1, gas=5)]
        assert receipts_root(results) == receipts_root(list(results))

    def test_sensitive_to_log_data(self):
        with_log = [result(0, logs=[LogRecord(ADDR, (1,), b"a")])]
        other_log = [result(0, logs=[LogRecord(ADDR, (1,), b"b")])]
        assert receipts_root(with_log) != receipts_root(other_log)

    def test_sensitive_to_status(self):
        assert receipts_root([result(0, success=True)]) != receipts_root(
            [result(0, success=False)]
        )

    def test_sensitive_to_order(self):
        a = [result(0, gas=10), result(1, gas=20)]
        b = [result(0, gas=20), result(1, gas=10)]
        assert receipts_root(a) != receipts_root(b)

    def test_empty_block(self):
        from repro.trie import EMPTY_ROOT

        assert receipts_root([]) == EMPTY_ROOT
