"""The JSON-RPC dispatcher and the ingress facade's overload machinery."""

from __future__ import annotations

import json

import pytest

from repro.bench.suite import EXECUTOR_FACTORIES
from repro.errors import BackpressureActive, CircuitOpen
from repro.evm.message import Transaction
from repro.mempool import Mempool, MempoolConfig, wire_transaction
from repro.obs import MetricsRegistry
from repro.rpc import RpcConfig, RpcDispatcher, RpcFacade, SimTransport
from repro.service import ChainService
from repro.workloads import ChainSpec, build_chain


@pytest.fixture()
def stack():
    chain = build_chain(ChainSpec(accounts=12, tokens=1, amm_pairs=0, seed=5))
    executor = EXECUTOR_FACTORIES["serial"](1, None)
    service = ChainService(None, executor, chain=chain)
    metrics = MetricsRegistry()
    mempool = Mempool(MempoolConfig(capacity=8, high_watermark=0.5, low_watermark=0.25), chain.world, metrics=metrics)
    facade = RpcFacade(service, mempool, RpcConfig(block_txs=4), metrics=metrics)
    transport = SimTransport(RpcDispatcher(facade, metrics=metrics))
    return chain, service, mempool, facade, transport


def transfer_wire(chain, sender_index=0, nonce=0, gas_price=10):
    return wire_transaction(
        Transaction(
            sender=chain.accounts[sender_index],
            to=chain.accounts[-1],
            value=1_000,
            data=b"",
            gas_limit=21_000,
            gas_price=gas_price,
            nonce=nonce,
        )
    )


def rpc(method, params, request_id=1):
    return {"jsonrpc": "2.0", "id": request_id, "method": method, "params": params}


class TestDispatcher:
    def test_parse_error(self, stack):
        *_, facade, transport = stack
        response = json.loads(transport.dispatcher.handle("{not json"))
        assert response["error"]["code"] == -32700

    def test_invalid_request_and_unknown_method(self, stack):
        *_, transport = stack
        assert transport.request([1, 2, 3])["error"]["code"] == -32600
        assert transport.request(rpc("bogus", {}))["error"]["code"] == -32601

    def test_invalid_params(self, stack):
        *_, transport = stack
        assert transport.request(rpc("get_balance", {}))["error"]["code"] == -32602

    def test_send_and_read_round_trip(self, stack):
        chain, service, mempool, facade, transport = stack
        response = transport.request(rpc("send_transaction", transfer_wire(chain)))
        tx_hash = response["result"]["tx_hash"]
        assert tx_hash.startswith("0x")
        # Pending until a block is produced.
        receipt = transport.request(rpc("get_receipt", {"tx_hash": tx_hash}))
        assert receipt["result"]["status"] == "pending"
        produced = facade.produce_block(now_us=50_000.0)
        assert produced.outcome is not None and produced.outcome.tx_count == 1
        receipt = transport.request(rpc("get_receipt", {"tx_hash": tx_hash}))
        assert receipt["result"]["status"] == 1
        assert receipt["result"]["gas_used"] == 21_000
        block = transport.request(rpc("get_block", {}))["result"]
        assert block["tx_hashes"] == [tx_hash]
        balance = transport.request(
            rpc("get_balance", {"address": "0x" + chain.accounts[0].hex()})
        )["result"]
        assert balance["nonce"] == 1

    def test_admission_error_envelope(self, stack):
        chain, *_, transport = stack
        wire = transfer_wire(chain)
        wire["chain_id"] = 999
        response = transport.request(rpc("send_transaction", wire))
        error = response["error"]
        assert error["code"] == -32000
        assert error["data"]["reason"] == "wrong-chain-id"
        assert error["data"]["retryable"] is False

    def test_health_is_never_shed(self, stack):
        *_, facade, transport = stack
        facade.circuit_open = True
        facade.backpressure_active = True
        health = transport.request(rpc("health", {}))["result"]
        assert health["circuit_open"] and health["backpressure"]


class TestOverload:
    def test_backpressure_hysteresis(self, stack):
        chain, service, mempool, facade, transport = stack
        # capacity 8, high watermark 4, low watermark 2.
        for index in range(4):
            facade.send_transaction(transfer_wire(chain, sender_index=index))
        with pytest.raises(BackpressureActive) as err:
            facade.send_transaction(transfer_wire(chain, sender_index=5))
        assert err.value.retry_after_us > 0
        # Producing a block drains 4 txs; depth 0 <= low watermark clears it.
        facade.produce_block(now_us=50_000.0)
        facade.send_transaction(transfer_wire(chain, sender_index=5))

    def test_circuit_breaker_opens_and_closes(self, stack):
        chain, service, mempool, facade, transport = stack
        # Overrun the 50 ms interval by 150 ms per tick: integrator passes
        # the 200 ms open threshold on the second tick.
        facade._account_lag(50_000.0, 200_000.0)
        assert not facade.circuit_open
        facade._account_lag(100_000.0, 200_000.0)
        assert facade.circuit_open
        with pytest.raises(CircuitOpen):
            facade.get_balance({"address": "0x" + chain.accounts[0].hex()})
        # Idle on-schedule ticks drain the backlog below 75 ms and close it.
        for tick in range(3, 9):
            facade._account_lag(tick * 50_000.0, 0.0)
        assert not facade.circuit_open
        facade.get_balance({"address": "0x" + chain.accounts[0].hex()})

    def test_slow_ticks_accrue_lag_without_slow_commits(self, stack):
        *_, facade, _ = stack
        # A consumer ticking at 3x the 50 ms interval accrues 50 ms of lag
        # per tick even when the commit lane itself is instant.
        facade._account_lag(0.0, 0.0)
        for tick in range(1, 5):
            facade._account_lag(tick * 150_000.0, 0.0)
        assert facade.commit_lag_us >= 200_000.0
        assert facade.circuit_open

    def test_retry_after_escalates_with_pressure(self, stack):
        *_, facade, _ = stack
        level0 = facade.retry_after_us()
        facade._pressure_streak = 3
        assert facade.retry_after_us() > level0
