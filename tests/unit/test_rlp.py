"""RLP encoding/decoding: yellow-paper vectors, canonicality, round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import rlp
from repro.errors import RLPError


class TestEncodeVectors:
    def test_empty_string(self):
        assert rlp.encode(b"") == b"\x80"

    def test_single_low_byte_encodes_itself(self):
        assert rlp.encode(b"\x00") == b"\x00"
        assert rlp.encode(b"\x7f") == b"\x7f"

    def test_single_high_byte_gets_prefix(self):
        assert rlp.encode(b"\x80") == b"\x81\x80"

    def test_short_string(self):
        assert rlp.encode(b"dog") == b"\x83dog"

    def test_55_byte_string_is_short_form(self):
        data = b"a" * 55
        assert rlp.encode(data) == bytes([0x80 + 55]) + data

    def test_56_byte_string_is_long_form(self):
        data = b"a" * 56
        assert rlp.encode(data) == b"\xb8\x38" + data

    def test_1024_byte_string(self):
        data = b"b" * 1024
        assert rlp.encode(data) == b"\xb9\x04\x00" + data

    def test_empty_list(self):
        assert rlp.encode([]) == b"\xc0"

    def test_cat_dog_list(self):
        assert rlp.encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_set_theoretic_representation_of_three(self):
        # [ [], [[]], [ [], [[]] ] ] — the classic nested vector.
        assert rlp.encode([[], [[]], [[], [[]]]]) == bytes.fromhex(
            "c7c0c1c0c3c0c1c0"
        )

    def test_long_list(self):
        payload = [b"x" * 10] * 6  # 66 bytes of payload > 55
        encoded = rlp.encode(payload)
        assert encoded[0] == 0xF8
        assert encoded[1] == 66

    def test_bytearray_accepted(self):
        assert rlp.encode(bytearray(b"dog")) == b"\x83dog"

    def test_tuple_accepted(self):
        assert rlp.encode((b"cat", b"dog")) == rlp.encode([b"cat", b"dog"])

    def test_unencodable_type_raises(self):
        with pytest.raises(RLPError):
            rlp.encode("strings are not bytes")  # type: ignore[arg-type]


class TestIntegers:
    def test_zero_is_empty_string(self):
        assert rlp.encode_uint(0) == b"\x80"

    def test_small_int(self):
        assert rlp.encode_uint(15) == b"\x0f"

    def test_1024(self):
        assert rlp.encode_uint(1024) == b"\x82\x04\x00"

    def test_negative_rejected(self):
        with pytest.raises(RLPError):
            rlp.encode_uint(-1)

    def test_uint_bytes_roundtrip(self):
        for v in (0, 1, 127, 128, 255, 256, 2**64, 2**255):
            assert rlp.bytes_to_uint(rlp.uint_to_bytes(v)) == v


class TestDecodeErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(RLPError):
            rlp.decode(b"\x83dogX")

    def test_truncated_string_rejected(self):
        with pytest.raises(RLPError):
            rlp.decode(b"\x83do")

    def test_truncated_list_rejected(self):
        with pytest.raises(RLPError):
            rlp.decode(b"\xc8\x83cat")

    def test_empty_input_rejected(self):
        with pytest.raises(RLPError):
            rlp.decode(b"")

    def test_non_canonical_single_byte_rejected(self):
        # 0x81 0x05 encodes 5, which must encode as plain 0x05.
        with pytest.raises(RLPError):
            rlp.decode(b"\x81\x05")

    def test_non_canonical_long_form_rejected(self):
        # Long form used for a 3-byte payload.
        with pytest.raises(RLPError):
            rlp.decode(b"\xb8\x03dog")

    def test_leading_zero_length_rejected(self):
        with pytest.raises(RLPError):
            rlp.decode(b"\xb9\x00\x38" + b"a" * 56)


# A recursive strategy over RLP items: bytes or nested lists of items.
rlp_items = st.recursive(
    st.binary(max_size=80),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


@given(rlp_items)
def test_roundtrip(item):
    assert rlp.decode(rlp.encode(item)) == _normalise(item)


@given(rlp_items, rlp_items)
def test_encoding_is_injective(a, b):
    if _normalise(a) != _normalise(b):
        assert rlp.encode(a) != rlp.encode(b)


def _normalise(item):
    """Decoded items are bytes/lists; tuples/bytearrays normalise to those."""
    if isinstance(item, (bytes, bytearray)):
        return bytes(item)
    return [_normalise(child) for child in item]
