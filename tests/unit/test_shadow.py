"""Shadow stack and shadow memory (§5.2.1, §5.2.3 — the Figure 8 example)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.shadow import FrameShadow


class TestShadowStack:
    def test_push_pop(self):
        s = FrameShadow()
        s.push(None)
        s.push(4)
        assert s.pop() == 4
        assert s.pop() is None

    def test_pop_n_top_first(self):
        s = FrameShadow()
        for x in (1, 2, 3):
            s.push(x)
        assert s.pop_n(2) == (3, 2)

    def test_pop_n_zero(self):
        assert FrameShadow().pop_n(0) == ()

    def test_dup_copies_cell(self):
        s = FrameShadow()
        s.push(7)
        s.push(None)
        s.dup(2)
        assert s.stack == [7, None, 7]

    def test_swap(self):
        s = FrameShadow()
        s.push(1)
        s.push(2)
        s.push(3)
        s.swap(2)
        assert s.stack == [3, 2, 1]


class TestShadowMemory:
    def test_mstore_marks_32_bytes(self):
        s = FrameShadow()
        s.mark_memory(64, 32, lsn=9)
        assert s.memory[64] == (9, 0)
        assert s.memory[95] == (9, 31)
        assert 96 not in s.memory

    def test_mstore8_marks_value_low_byte(self):
        s = FrameShadow()
        s.mark_memory(10, 1, lsn=5)
        # One stored byte = byte 31 of the defining entry's 32-byte result.
        assert s.memory[10] == (5, 31)

    def test_constant_store_clears_marks(self):
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=3)
        s.mark_memory(0, 32, lsn=None)
        assert not s.memory

    def test_partial_overwrite(self):
        # Figure 8a: MSTORE at 0, then MSTORE8 at 5 from a different entry.
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=1)
        s.mark_memory(5, 1, lsn=2)
        assert s.memory[4] == (1, 4)
        assert s.memory[5] == (2, 31)
        assert s.memory[6] == (1, 6)

    def test_memory_deps_single_run(self):
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=1)
        assert s.memory_deps(0, 32) == ((0, 32, 1, 0),)

    def test_memory_deps_figure8(self):
        """The interleaved MSTORE/MSTORE8 case: the read splits into runs."""
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=1)  # entry 1 writes [0:32)
        s.mark_memory(5, 1, lsn=2)  # entry 2 writes byte 5
        deps = s.memory_deps(0, 32)
        assert deps == (
            (0, 5, 1, 0),  # bytes [0:5) from entry 1's bytes [0:5)
            (5, 1, 2, 31),  # byte 5 from entry 2's byte 31
            (6, 26, 1, 6),  # bytes [6:32) from entry 1's bytes [6:32)
        )

    def test_memory_deps_offset_read(self):
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=1)
        # Read [16:48): first 16 bytes dependent, rest constant.
        assert s.memory_deps(16, 32) == ((0, 16, 1, 16),)

    def test_memory_deps_empty_region(self):
        assert FrameShadow().memory_deps(0, 64) == ()

    def test_adjacent_but_different_entries_do_not_merge(self):
        s = FrameShadow()
        s.mark_memory(0, 32, lsn=1)
        s.mark_memory(32, 32, lsn=2)
        deps = s.memory_deps(0, 64)
        assert deps == ((0, 32, 1, 0), (32, 32, 2, 0))

    def test_non_contiguous_result_offsets_split_runs(self):
        s = FrameShadow()
        # Bytes map to the same entry but at non-consecutive result offsets.
        s.memory[0] = (1, 0)
        s.memory[1] = (1, 5)
        assert s.memory_deps(0, 2) == ((0, 1, 1, 0), (1, 1, 1, 5))

    def test_capture_region_rebases(self):
        s = FrameShadow()
        s.mark_memory(10, 4, lsn=3)
        captured = s.capture_region(8, 8)
        assert captured == {
            2: (3, 28),
            3: (3, 29),
            4: (3, 30),
            5: (3, 31),
        }

    def test_copy_into_memory(self):
        s = FrameShadow()
        source = {0: (7, 0), 1: (7, 1)}
        s.mark_memory(100, 4, lsn=1)  # pre-existing marks to be overwritten
        s.copy_into_memory(100, 4, source, 0)
        assert s.memory[100] == (7, 0)
        assert s.memory[101] == (7, 1)
        assert 102 not in s.memory  # constant source bytes clear marks

    def test_buffer_deps(self):
        s = FrameShadow()
        s.calldata = {4: (9, 0), 5: (9, 1)}
        assert s.buffer_deps(s.calldata, 4, 2) == ((0, 2, 9, 0),)
        assert s.memory == {}  # buffer_deps must not disturb real memory


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=128),  # offset
            st.sampled_from([1, 32]),  # MSTORE8 or MSTORE
            st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
        ),
        max_size=20,
    )
)
def test_memory_deps_reconstruct_cell_map(writes):
    """Property: collapsing into runs is lossless — expanding the MemDeps
    reproduces exactly the per-byte cell map over any window."""
    s = FrameShadow()
    for offset, length, lsn in writes:
        s.mark_memory(offset, length, lsn)
    window_start, window_size = 0, 192
    deps = s.memory_deps(window_start, window_size)
    rebuilt: dict[int, tuple[int, int]] = {}
    for start, length, lsn, result_offset in deps:
        for i in range(length):
            rebuilt[window_start + start + i] = (lsn, result_offset + i)
    expected = {
        o: cell
        for o, cell in s.memory.items()
        if window_start <= o < window_start + window_size
    }
    assert rebuilt == expected
