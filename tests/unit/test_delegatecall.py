"""DELEGATECALL, the proxy pattern, and the newer environment opcodes."""

from __future__ import annotations

from repro.contracts import (
    ERC20,
    IMPLEMENTATION_SLOT,
    Proxy,
    balance_slot,
    encode_call,
)
from repro.contracts.abi import event_topic
from repro.core.redo import redo
from repro.core.tracer import SSATracer
from repro.crypto import keccak256
from repro.evm.assembler import assemble
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import address_to_word, make_address
from repro.state import StateView, WorldState
from repro.state.keys import storage_key

IMPL = make_address(1)
PROXY = make_address(2)
ALICE = make_address(100)
BOB = make_address(101)
ETHER = 10**18

RETURN_TOP = "PUSH0 MSTORE PUSH 32 PUSH0 RETURN"


def proxied_erc20_world() -> WorldState:
    world = WorldState()
    world.set_code(IMPL, ERC20)
    world.set_code(PROXY, Proxy)
    world.set_storage(PROXY, IMPLEMENTATION_SLOT, address_to_word(IMPL))
    world.set_storage(PROXY, balance_slot(ALICE), 1_000)
    world.set_balance(ALICE, 10 * ETHER)
    return world


def run(world, tx, tracer=None):
    view = StateView(world)
    return execute_transaction(view, tx, BlockEnv(), tracer=tracer)


def transfer(amount: int) -> Transaction:
    return Transaction(
        sender=ALICE,
        to=PROXY,
        data=encode_call("transfer(address,uint256)", BOB, amount),
        gas_limit=400_000,
    )


class TestProxiedERC20:
    def test_storage_lives_on_the_proxy(self):
        result = run(proxied_erc20_world(), transfer(300))
        assert result.success
        assert result.write_set[storage_key(PROXY, balance_slot(ALICE))] == 700
        assert result.write_set[storage_key(PROXY, balance_slot(BOB))] == 300
        assert not any(
            key[0] == "s" and key[1] == IMPL for key in result.write_set
        )

    def test_return_data_bubbles_through(self):
        result = run(proxied_erc20_world(), transfer(1))
        assert int.from_bytes(result.return_data, "big") == 1

    def test_event_address_is_the_proxy(self):
        result = run(proxied_erc20_world(), transfer(10))
        (log,) = result.logs
        assert log.address == PROXY
        assert log.topics[0] == event_topic("Transfer(address,address,uint256)")
        assert log.topics[1] == address_to_word(ALICE)

    def test_implementation_revert_bubbles(self):
        result = run(proxied_erc20_world(), transfer(5_000))  # insufficient
        assert not result.success

    def test_balance_of_through_proxy(self):
        world = proxied_erc20_world()
        tx = Transaction(
            sender=ALICE,
            to=PROXY,
            data=encode_call("balanceOf(address)", ALICE),
            gas_limit=300_000,
        )
        result = run(world, tx)
        assert int.from_bytes(result.return_data, "big") == 1_000

    def test_ssa_log_tracks_through_delegatecall(self):
        tracer = SSATracer()
        result = run(proxied_erc20_world(), transfer(300), tracer=tracer)
        assert result.success
        assert tracer.log.redoable
        # The implementation slot is a type-I read; the delegate target is a
        # storage-derived value, so a data-flow guard must exist for it.
        assert storage_key(PROXY, IMPLEMENTATION_SLOT) in tracer.log.direct_reads

    def test_redo_through_proxy(self):
        world = proxied_erc20_world()
        tracer = SSATracer()
        result = run(world, transfer(300), tracer=tracer)
        key = storage_key(PROXY, balance_slot(ALICE))
        outcome = redo(tracer.log, {key: 800})
        assert outcome.success
        assert outcome.updated_writes[key] == 500

    def test_redo_aborts_if_implementation_was_upgraded(self):
        """A conflicting upgrade of the implementation address violates the
        data-flow guard on the delegate target: the redo must decline."""
        world = proxied_erc20_world()
        tracer = SSATracer()
        run(world, transfer(300), tracer=tracer)
        outcome = redo(
            tracer.log,
            {storage_key(PROXY, IMPLEMENTATION_SLOT): address_to_word(BOB)},
        )
        assert not outcome.success

    def test_caller_preserved_through_delegate(self):
        """msg.sender inside the implementation is the original caller —
        that is why balances[CALLER] debits ALICE, not the proxy."""
        result = run(proxied_erc20_world(), transfer(10))
        assert result.write_set[storage_key(PROXY, balance_slot(ALICE))] == 990


class TestDelegateSemantics:
    def _world_with(self, caller_src: str, callee_src: str) -> WorldState:
        world = WorldState()
        world.set_code(PROXY, assemble(caller_src))
        world.set_code(IMPL, assemble(callee_src))
        world.set_balance(ALICE, 10 * ETHER)
        return world

    def _delegate_snippet(self) -> str:
        return (
            f"PUSH 32 PUSH0 PUSH0 PUSH0 "
            f"PUSH {address_to_word(IMPL)} PUSH 200000 DELEGATECALL"
        )

    def test_delegate_writes_callers_storage(self):
        callee = "PUSH 9 PUSH 1 SSTORE STOP"
        caller = self._delegate_snippet() + " STOP"
        world = self._world_with(caller, callee)
        result = run(world, Transaction(sender=ALICE, to=PROXY, gas_limit=400_000))
        assert result.write_set[storage_key(PROXY, 1)] == 9
        assert storage_key(IMPL, 1) not in result.write_set

    def test_delegate_sees_callers_address(self):
        callee = f"ADDRESS {RETURN_TOP}"
        caller = self._delegate_snippet() + f" POP PUSH0 MLOAD {RETURN_TOP}"
        world = self._world_with(caller, callee)
        result = run(world, Transaction(sender=ALICE, to=PROXY, gas_limit=400_000))
        assert int.from_bytes(result.return_data, "big") == address_to_word(PROXY)

    def test_delegate_preserves_callvalue(self):
        callee = f"CALLVALUE {RETURN_TOP}"
        caller = self._delegate_snippet() + f" POP PUSH0 MLOAD {RETURN_TOP}"
        world = self._world_with(caller, callee)
        result = run(
            world, Transaction(sender=ALICE, to=PROXY, value=77, gas_limit=400_000)
        )
        assert int.from_bytes(result.return_data, "big") == 77

    def test_delegate_inherits_static_protection(self):
        # STATICCALL -> (delegatecalling proxy) -> SSTORE must fail.
        writer = "PUSH 9 PUSH 1 SSTORE STOP"
        proxy_like = self._delegate_snippet() + f" {RETURN_TOP}"
        outer = make_address(3)
        world = self._world_with(proxy_like, writer)
        world.set_code(
            outer,
            assemble(
                # Return the proxy's *payload* (the DELEGATECALL status it
                # observed), not the outer STATICCALL's own success flag.
                f"PUSH 32 PUSH0 PUSH0 PUSH0 PUSH {address_to_word(PROXY)} "
                f"PUSH 300000 STATICCALL POP PUSH0 MLOAD {RETURN_TOP}"
            ),
        )
        result = run(world, Transaction(sender=ALICE, to=outer, gas_limit=500_000))
        assert result.success
        # The writer's SSTORE raised WriteProtection inside the delegate
        # frame: the proxy saw DELEGATECALL push 0.
        assert int.from_bytes(result.return_data, "big") == 0
        assert storage_key(PROXY, 1) not in result.write_set


class TestNewEnvOpcodes:
    ENV = BlockEnv(number=14_000_000)

    def _run_code(self, src: str, setup=None):
        world = WorldState()
        world.set_code(PROXY, assemble(src))
        world.set_balance(ALICE, 10 * ETHER)
        if setup:
            setup(world)
        view = StateView(world)
        tx = Transaction(sender=ALICE, to=PROXY, gas_limit=400_000)
        return execute_transaction(view, tx, self.ENV)

    def test_extcodesize(self):
        def setup(world):
            world.set_code(IMPL, b"\x00" * 123)

        result = self._run_code(
            f"PUSH {address_to_word(IMPL)} EXTCODESIZE {RETURN_TOP}", setup
        )
        assert int.from_bytes(result.return_data, "big") == 123

    def test_extcodesize_of_empty_account(self):
        result = self._run_code(
            f"PUSH {address_to_word(BOB)} EXTCODESIZE {RETURN_TOP}"
        )
        assert int.from_bytes(result.return_data, "big") == 0

    def test_extcodehash(self):
        code = b"\x60\x00"

        def setup(world):
            world.set_code(IMPL, code)

        result = self._run_code(
            f"PUSH {address_to_word(IMPL)} EXTCODEHASH {RETURN_TOP}", setup
        )
        assert result.return_data == keccak256(code)

    def test_extcodehash_of_empty_account_is_zero(self):
        result = self._run_code(
            f"PUSH {address_to_word(BOB)} EXTCODEHASH {RETURN_TOP}"
        )
        assert int.from_bytes(result.return_data, "big") == 0

    def test_blockhash_recent(self):
        number = self.ENV.number
        result = self._run_code(f"PUSH {number - 1} BLOCKHASH {RETURN_TOP}")
        assert int.from_bytes(result.return_data, "big") != 0

    def test_blockhash_is_deterministic(self):
        number = self.ENV.number
        a = self._run_code(f"PUSH {number - 7} BLOCKHASH {RETURN_TOP}")
        b = self._run_code(f"PUSH {number - 7} BLOCKHASH {RETURN_TOP}")
        assert a.return_data == b.return_data

    def test_blockhash_too_old_or_future_is_zero(self):
        number = self.ENV.number
        for probe in (number, number + 5, number - 400, 0):
            result = self._run_code(f"PUSH {probe} BLOCKHASH {RETURN_TOP}")
            assert int.from_bytes(result.return_data, "big") == 0, probe
