"""Nested message calls: CALL, STATICCALL, value transfer, returndata."""

from __future__ import annotations

from repro.evm.assembler import assemble
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import address_to_word, make_address
from repro.state import StateView, WorldState
from repro.state.keys import balance_key, storage_key

CALLER_ADDR = make_address(0xAAAA)
CALLEE_ADDR = make_address(0xBBBB)
SENDER = make_address(0x5E4D)
ETHER = 10**18

RETURN_TOP = "PUSH0 MSTORE PUSH 32 PUSH0 RETURN"


def build_world(caller_src: str, callee_src: str) -> WorldState:
    world = WorldState()
    world.set_code(CALLER_ADDR, assemble(caller_src))
    world.set_code(CALLEE_ADDR, assemble(callee_src))
    world.set_balance(SENDER, 10 * ETHER)
    return world


def run(world: WorldState, value: int = 0, gas_limit: int = 1_000_000):
    view = StateView(world)
    tx = Transaction(sender=SENDER, to=CALLER_ADDR, value=value, gas_limit=gas_limit)
    return execute_transaction(view, tx, BlockEnv()), view


def call_snippet(value: int = 0, args_size: int = 0, ret_size: int = 32,
                 opcode: str = "CALL") -> str:
    """CALL/STATICCALL to CALLEE with ret buffer at 0."""
    to_word = address_to_word(CALLEE_ADDR)
    value_part = f"PUSH {value}" if opcode == "CALL" else ""
    return f"""
    PUSH {ret_size} PUSH0 PUSH {args_size} PUSH0 {value_part}
    PUSH {to_word} PUSH 300000 {opcode}
    """


class TestBasicCall:
    def test_call_returns_callee_data(self):
        callee = f"PUSH 77 {RETURN_TOP}"
        caller = call_snippet() + f"POP PUSH0 MLOAD {RETURN_TOP}"
        result, _ = run(build_world(caller, callee))
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 77

    def test_call_success_flag_is_one(self):
        callee = "STOP"
        caller = call_snippet() + RETURN_TOP
        result, _ = run(build_world(caller, callee))
        assert int.from_bytes(result.return_data, "big") == 1

    def test_call_to_reverting_callee_pushes_zero(self):
        callee = "PUSH0 PUSH0 REVERT"
        caller = call_snippet() + RETURN_TOP
        result, _ = run(build_world(caller, callee))
        assert result.success  # the caller survives
        assert int.from_bytes(result.return_data, "big") == 0

    def test_call_to_empty_account_succeeds(self):
        caller = call_snippet() + RETURN_TOP
        world = build_world(caller, "STOP")
        world.set_code(CALLEE_ADDR, b"")
        result, _ = run(world)
        assert int.from_bytes(result.return_data, "big") == 1

    def test_callee_sees_caller_identity(self):
        callee = f"CALLER {RETURN_TOP}"
        caller = call_snippet() + f"POP PUSH0 MLOAD {RETURN_TOP}"
        result, _ = run(build_world(caller, callee))
        assert int.from_bytes(result.return_data, "big") == address_to_word(
            CALLER_ADDR
        )

    def test_origin_is_tx_sender_in_nested_frame(self):
        callee = f"ORIGIN {RETURN_TOP}"
        caller = call_snippet() + f"POP PUSH0 MLOAD {RETURN_TOP}"
        result, _ = run(build_world(caller, callee))
        assert int.from_bytes(result.return_data, "big") == address_to_word(SENDER)


class TestValueTransfer:
    def test_call_moves_value(self):
        callee = "STOP"
        caller = call_snippet(value=123) + "STOP"
        world = build_world(caller, callee)
        world.set_balance(CALLER_ADDR, 1_000)
        result, view = run(world)
        assert result.success
        assert result.write_set[balance_key(CALLEE_ADDR)] == 123
        assert result.write_set[balance_key(CALLER_ADDR)] == 877

    def test_reverting_callee_rolls_back_transfer(self):
        callee = "PUSH0 PUSH0 REVERT"
        caller = call_snippet(value=123) + "STOP"
        world = build_world(caller, callee)
        world.set_balance(CALLER_ADDR, 1_000)
        result, _ = run(world)
        assert result.success
        assert balance_key(CALLEE_ADDR) not in result.write_set

    def test_insufficient_contract_balance_fails_frame(self):
        callee = "STOP"
        caller = call_snippet(value=123) + "STOP"
        world = build_world(caller, callee)  # caller contract holds 0
        result, _ = run(world)
        assert not result.success

    def test_tx_value_lands_on_contract(self):
        caller = f"SELFBALANCE {RETURN_TOP}"
        world = build_world(caller, "STOP")
        result, _ = run(world, value=555)
        assert int.from_bytes(result.return_data, "big") == 555


class TestCalleeStateWrites:
    def test_callee_storage_write_is_in_tx_write_set(self):
        callee = "PUSH 9 PUSH 1 SSTORE STOP"
        caller = call_snippet() + "STOP"
        result, _ = run(build_world(caller, callee))
        assert result.write_set[storage_key(CALLEE_ADDR, 1)] == 9

    def test_callee_writes_rolled_back_on_its_revert(self):
        callee = "PUSH 9 PUSH 1 SSTORE PUSH0 PUSH0 REVERT"
        caller = call_snippet() + "STOP"
        result, _ = run(build_world(caller, callee))
        assert result.success
        assert storage_key(CALLEE_ADDR, 1) not in result.write_set

    def test_callee_writes_its_own_storage_namespace(self):
        callee = "PUSH 9 PUSH 1 SSTORE STOP"
        caller = "PUSH 5 PUSH 1 SSTORE " + call_snippet() + "STOP"
        result, _ = run(build_world(caller, callee))
        assert result.write_set[storage_key(CALLER_ADDR, 1)] == 5
        assert result.write_set[storage_key(CALLEE_ADDR, 1)] == 9


class TestStaticCall:
    def test_staticcall_reads(self):
        callee = f"PUSH 1 SLOAD {RETURN_TOP}"
        caller = call_snippet(opcode="STATICCALL") + f"POP PUSH0 MLOAD {RETURN_TOP}"
        world = build_world(caller, callee)
        world.set_storage(CALLEE_ADDR, 1, 42)
        result, _ = run(world)
        assert int.from_bytes(result.return_data, "big") == 42

    def test_staticcall_blocks_sstore(self):
        callee = "PUSH 9 PUSH 1 SSTORE STOP"
        caller = call_snippet(opcode="STATICCALL") + RETURN_TOP
        result, _ = run(build_world(caller, callee))
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 0  # callee failed

    def test_staticcall_blocks_log(self):
        callee = "PUSH0 PUSH0 LOG0 STOP"
        caller = call_snippet(opcode="STATICCALL") + RETURN_TOP
        result, _ = run(build_world(caller, callee))
        assert int.from_bytes(result.return_data, "big") == 0


class TestReturnData:
    def test_returndatasize_and_copy(self):
        callee = f"PUSH 0xBEEF {RETURN_TOP}"
        caller = (
            call_snippet(ret_size=0)
            + f"""
            POP
            RETURNDATASIZE PUSH 64 MSTORE          ; record size at 64
            PUSH 32 PUSH0 PUSH0 RETURNDATACOPY     ; copy data to 0
            PUSH0 MLOAD PUSH 96 MSTORE
            PUSH 64 PUSH 64 RETURN                 ; return [size, data]
            """
        )
        result, _ = run(build_world(caller, callee))
        assert result.success
        size = int.from_bytes(result.return_data[:32], "big")
        data = int.from_bytes(result.return_data[32:], "big")
        assert size == 32
        assert data == 0xBEEF

    def test_returndatacopy_out_of_bounds_fails(self):
        callee = "STOP"  # empty return data
        caller = call_snippet() + "PUSH 1 PUSH0 PUSH0 RETURNDATACOPY STOP"
        result, _ = run(build_world(caller, callee))
        assert not result.success

    def test_ret_buffer_truncates_long_return(self):
        callee = (
            "PUSH 0xAA PUSH0 MSTORE PUSH 0xBB PUSH 32 MSTORE "
            "PUSH 64 PUSH0 RETURN"
        )
        # Only 32 bytes of return buffer: second word must not be copied.
        caller = call_snippet(ret_size=32) + f"POP PUSH 32 MLOAD {RETURN_TOP}"
        result, _ = run(build_world(caller, callee))
        assert int.from_bytes(result.return_data, "big") == 0


class TestGasFlow:
    def test_callee_gets_bounded_gas(self):
        # Callee burns everything it is given; caller must still finish.
        callee = "loop: JUMPDEST PUSH @loop JUMP"
        caller = call_snippet() + RETURN_TOP
        result, _ = run(build_world(caller, callee), gas_limit=200_000)
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 0

    def test_unused_callee_gas_is_refunded(self):
        callee = "STOP"
        caller = call_snippet() + f"GAS {RETURN_TOP}"
        result, _ = run(build_world(caller, callee), gas_limit=400_000)
        remaining = int.from_bytes(result.return_data, "big")
        assert remaining > 300_000 - 50_000  # most of the allowance survives
