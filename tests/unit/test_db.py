"""Storage substrates: LRU cache, simulated-latency store, prefetch warming."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import LRUCache, MemoryKV, SimulatedDiskKV


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5

    def test_clear_and_reset(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        cache.reset_stats()
        assert "a" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_evictions_counted(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.evictions == 0
        cache.put("c", 3)  # evicts a
        cache.put("b", 20)  # refresh, no eviction
        assert cache.evictions == 1
        assert cache.as_dict()["evictions"] == 1

    def test_peak_entries_tracks_high_water_mark(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, 1)
        assert cache.peak_entries == 3
        cache.clear()
        assert len(cache) == 0
        # The high-water mark survives a clear: it answers "how much memory
        # did this run ever need", not "how much is held right now".
        assert cache.peak_entries == 3
        assert cache.as_dict()["peak_entries"] == 3

    def test_reset_stats_rebases_peak_to_current_occupancy(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.reset_stats()
        assert cache.evictions == 0
        assert cache.peak_entries == 2


class TestMemoryKV:
    def test_reads_are_free(self):
        kv = MemoryKV()
        kv.write("k", 42)
        sample = kv.read("k")
        assert sample.value == 42
        assert sample.latency_us == 0.0

    def test_default(self):
        assert MemoryKV().read("missing", default=7).value == 7


class TestSimulatedDiskKV:
    def test_first_read_is_cold(self):
        kv = SimulatedDiskKV(disk_latency_us=20.0, cache_latency_us=0.5)
        kv.write("k", 1)
        sample = kv.read("k")
        assert sample.latency_us == 20.0
        assert not sample.cache_hit

    def test_second_read_is_warm(self):
        kv = SimulatedDiskKV(disk_latency_us=20.0, cache_latency_us=0.5)
        kv.write("k", 1)
        kv.read("k")
        sample = kv.read("k")
        assert sample.latency_us == 0.5
        assert sample.cache_hit

    def test_missing_key_returns_default_and_caches(self):
        kv = SimulatedDiskKV()
        assert kv.read("missing", default=0).value == 0
        assert kv.read("missing", default=0).cache_hit

    def test_write_updates_cached_value(self):
        kv = SimulatedDiskKV()
        kv.write("k", 1)
        kv.read("k")
        kv.write("k", 2)
        assert kv.read("k").value == 2

    def test_warm_makes_reads_cache_hits(self):
        kv = SimulatedDiskKV(disk_latency_us=20.0, cache_latency_us=0.5)
        kv.write("a", 1)
        # Without a default resolver, absent keys are left cold rather than
        # cached under a sentinel a direct cache reader could observe.
        warmed = kv.warm(["a", "b"])
        assert warmed == 1
        assert kv.read("a").cache_hit
        assert not kv.read("b", default=99).cache_hit
        assert kv.read("b", default=99).value == 99

    def test_warm_with_default_resolver_caches_absent_keys(self):
        kv = SimulatedDiskKV(disk_latency_us=20.0, cache_latency_us=0.5)
        kv.write("a", 1)
        warmed = kv.warm(["a", "b"], default_for=lambda key: 0)
        assert warmed == 2
        sample = kv.read("b", default=0)
        assert sample.cache_hit
        assert sample.value == 0

    def test_cache_never_holds_a_sentinel(self):
        # The regression this guards: `warm` used to cache a module-private
        # marker object for absent keys, which leaked to anything reading
        # through `LRUCache.get` directly instead of `SimulatedDiskKV.read`.
        kv = SimulatedDiskKV()
        kv.write("a", 1)
        kv.warm(["a", "missing"], default_for=lambda key: 0)
        assert kv.cache.get("a") == 1
        assert kv.cache.get("missing") == 0

    def test_warm_is_idempotent(self):
        kv = SimulatedDiskKV()
        kv.write("a", 1)
        kv.warm(["a"])
        assert kv.warm(["a"]) == 0

    def test_read_counters(self):
        kv = SimulatedDiskKV()
        kv.write("a", 1)
        kv.read("a")
        kv.read("a")
        assert kv.disk_reads == 1
        assert kv.cache_reads == 1
        kv.reset_stats()
        assert kv.disk_reads == 0

    def test_cache_eviction_causes_recold(self):
        kv = SimulatedDiskKV(cache_capacity=1)
        kv.write("a", 1)
        kv.write("b", 2)
        kv.read("a")
        kv.read("b")  # evicts a
        assert not kv.read("a").cache_hit


# One op per step: write, read, or warm (with/without a default resolver).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "warm", "warm_default"]),
        st.integers(min_value=0, max_value=7),  # a small, collision-rich keyspace
        st.integers(min_value=0, max_value=100),
    ),
    max_size=60,
)


class TestCacheAccounting:
    """Every read is exactly one LRU hit or one LRU miss — never neither.

    The historical failure mode: the store probed ``key in cache`` before
    ``cache.get``, so misses bypassed the LRU's stat counters entirely and
    ``hits + misses`` undercounted reads.
    """

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS, capacity=st.sampled_from([0, 1, 3, 100]))
    def test_hits_plus_misses_equals_reads(self, ops, capacity):
        kv = SimulatedDiskKV(cache_capacity=capacity)
        reads = 0
        for op, key, value in ops:
            if op == "write":
                kv.write(key, value)
            elif op == "read":
                kv.read(key, default=value)
                reads += 1
            elif op == "warm":
                kv.warm([key])
            else:
                kv.warm([key], default_for=lambda k: 0)
        assert kv.cache.hits + kv.cache.misses == reads
        assert kv.cache_reads == kv.cache.hits
        assert kv.disk_reads == kv.cache.misses
        assert kv.cache_reads + kv.disk_reads == reads
