"""The write-ahead journal: framing, scanning, tearing, pruning."""

from __future__ import annotations

import struct

import pytest

from repro.durability import (
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    CrashInjector,
    JOURNAL_MAGIC,
    MemoryMedium,
    SealRecord,
    SettleRecord,
    SimulatedCrash,
    TxWriteRecord,
    UndoRecord,
    WriteAheadJournal,
    delta_digest,
    enumerate_crash_sites,
    scan_journal,
    site_expected_state,
)
from repro.durability.journal import decode_record, encode_record, frame
from repro.errors import (
    DurabilityError,
    JournalCorruptionError,
    RecoveryError,
    ReorgDepthExceeded,
    ReproError,
    ResilienceError,
)
from repro.primitives import make_address
from repro.state.keys import balance_key, storage_key


def k(i: int):
    return balance_key(make_address(10_000 + i))


SAMPLE_RECORDS = [
    BeginRecord(7, 2, b"\xaa" * 16),
    TxWriteRecord(7, 0, {k(1): 5, storage_key(make_address(1), 3): 2**200}),
    TxWriteRecord(7, 1, {k(2): 0}),
    SettleRecord(7, {k(3): 123}),
    UndoRecord(7, {k(1): 0, k(2): 9, k(3): None}),
    CommitRecord(7, b"\xbb" * 16),
    SealRecord(7, b"\xcc" * 16),
    CheckpointRecord(7),
]


class TestRecords:
    @pytest.mark.parametrize("record", SAMPLE_RECORDS, ids=lambda r: type(r).__name__)
    def test_round_trip(self, record):
        assert decode_record(encode_record(record)) == record

    def test_undecodable_payload_is_typed(self):
        with pytest.raises(JournalCorruptionError):
            decode_record(b"\xff\xff\xff")

    def test_unknown_tag_is_typed(self):
        from repro import rlp

        with pytest.raises(JournalCorruptionError, match="unknown record tag"):
            decode_record(rlp.encode([b"Z", b"\x01"]))

    def test_error_taxonomy_roots_in_resilience(self):
        # The durability taxonomy hangs off ResilienceError so the PR-3
        # recovery policy machinery can route it like any degraded path.
        for exc_type in (JournalCorruptionError, RecoveryError, ReorgDepthExceeded):
            assert issubclass(exc_type, DurabilityError)
            assert issubclass(exc_type, ResilienceError)
            assert issubclass(exc_type, ReproError)
        assert JournalCorruptionError(42, "boom").offset == 42


class TestScan:
    def journal(self) -> WriteAheadJournal:
        return WriteAheadJournal(MemoryMedium())

    def test_empty_and_magic_only(self):
        assert scan_journal(b"").tail_status == "clean"
        scan = scan_journal(JOURNAL_MAGIC)
        assert scan.tail_status == "clean"
        assert scan.frames == []

    def test_partial_magic_is_torn(self):
        assert scan_journal(JOURNAL_MAGIC[:3]).tail_status == "torn"

    def test_bad_magic_is_corrupt(self):
        assert scan_journal(b"NOPE!!rest").tail_status == "corrupt"

    def test_clean_scan_returns_records_in_order(self):
        journal = self.journal()
        for record in SAMPLE_RECORDS:
            journal.append(record)
        scan = journal.scan()
        assert scan.tail_status == "clean"
        assert scan.records == SAMPLE_RECORDS
        assert scan.valid_length == journal.medium.journal_size()

    def test_torn_tail_is_detected_not_fatal(self):
        journal = self.journal()
        journal.append(SAMPLE_RECORDS[0])
        good_length = journal.medium.journal_size()
        data = frame(encode_record(SAMPLE_RECORDS[1]))
        journal.medium.append_journal(data[: len(data) // 2])
        scan = journal.scan()
        assert scan.tail_status == "torn"
        assert scan.valid_length == good_length
        assert scan.records == [SAMPLE_RECORDS[0]]

    def test_corrupt_interior_is_classified(self):
        journal = self.journal()
        for record in SAMPLE_RECORDS[:3]:
            journal.append(record)
        raw = bytearray(journal.medium.read_journal())
        # Flip a payload byte of the middle frame (not the tail frame).
        scan = journal.scan()
        middle_offset = scan.frames[1][0]
        raw[middle_offset + 9] ^= 0xFF
        damaged = scan_journal(bytes(raw))
        assert damaged.tail_status == "corrupt"
        assert damaged.records == [SAMPLE_RECORDS[0]]
        assert damaged.valid_length == middle_offset

    def test_corrupt_final_frame_is_torn(self):
        journal = self.journal()
        journal.append(SAMPLE_RECORDS[0])
        raw = bytearray(journal.medium.read_journal())
        raw[-1] ^= 0xFF
        assert scan_journal(bytes(raw)).tail_status == "torn"

    def test_implausible_length_is_corrupt(self):
        data = JOURNAL_MAGIC + struct.pack(">II", 1 << 30, 0) + b"x" * 64
        scan = scan_journal(data)
        assert scan.tail_status == "corrupt"
        assert "implausible" in scan.detail


class TestAppendAndPrune:
    def test_append_counts_bytes_and_records(self):
        journal = WriteAheadJournal(MemoryMedium())
        size = journal.append(SAMPLE_RECORDS[0])
        assert size > 0
        assert journal.records_written == 1
        assert journal.bytes_written == len(JOURNAL_MAGIC) + size

    def test_torn_append_writes_a_prefix_then_crashes(self):
        crash = CrashInjector("torn:begin")
        journal = WriteAheadJournal(MemoryMedium(), crash=crash)
        with pytest.raises(SimulatedCrash):
            journal.append(SAMPLE_RECORDS[0], site="begin")
        assert crash.fired
        assert journal.scan().tail_status == "torn"

    def test_site_crash_lands_after_the_full_frame(self):
        crash = CrashInjector("begin")
        journal = WriteAheadJournal(MemoryMedium(), crash=crash)
        with pytest.raises(SimulatedCrash):
            journal.append(SAMPLE_RECORDS[0], site="begin")
        scan = journal.scan()
        assert scan.tail_status == "clean"
        assert scan.records == [SAMPLE_RECORDS[0]]

    def test_prune_through_keeps_newer_blocks(self):
        journal = WriteAheadJournal(MemoryMedium())
        for number in (1, 2, 3):
            journal.append(BeginRecord(number, 0, b"\x00" * 16))
            journal.append(CommitRecord(number, b"\x00" * 16))
            journal.append(SealRecord(number, b"\x00" * 16))
        reclaimed = journal.prune_through(2)
        assert reclaimed > 0
        survivors = journal.scan().records
        assert {r.block_number for r in survivors} == {3}

    def test_prune_through_reclaims_torn_tail_when_nothing_newer(self):
        journal = WriteAheadJournal(MemoryMedium())
        journal.append(BeginRecord(1, 0, b"\x00" * 16))
        journal.append(CommitRecord(1, b"\x00" * 16))
        journal.medium.append_journal(b"\x01\x02\x03")  # torn garbage
        journal.prune_through(1)
        assert journal.medium.read_journal() == JOURNAL_MAGIC


class TestCrashSites:
    def test_enumeration_covers_the_protocol(self):
        sites = enumerate_crash_sites(3, checkpoint=True)
        assert sites[0] == "torn:begin"
        assert "txwrite:2" in sites
        assert "mid-snapshot" in sites
        assert "post-snapshot" in sites
        assert len(sites) == len(set(sites))
        no_ckpt = enumerate_crash_sites(3, checkpoint=False)
        assert "mid-snapshot" not in no_ckpt

    def test_atomicity_boundary(self):
        # Everything through the torn COMMIT marker recovers to pre-block
        # state; everything after recovers to post-block state.
        for site in enumerate_crash_sites(2, checkpoint=True):
            expected = site_expected_state(site)
            assert expected in ("pre", "post")
        assert site_expected_state("torn:commit") == "pre"
        assert site_expected_state("pre-commit") == "pre"
        assert site_expected_state("post-commit") == "post"
        assert site_expected_state("mid-apply") == "post"

    def test_simulated_crash_bypasses_the_recovery_ladder(self):
        # Deliberately NOT a ResilienceError: guarded_block's escalation
        # ladder must never absorb a process death.
        assert issubclass(SimulatedCrash, ReproError)
        assert not issubclass(SimulatedCrash, ResilienceError)

    def test_injector_is_inert_at_other_sites(self):
        crash = CrashInjector("undo")
        crash.maybe_crash("begin")
        assert not crash.fired
        assert crash.tear_fraction("begin") is None
        with pytest.raises(SimulatedCrash):
            crash.maybe_crash("undo")
        assert crash.fired


class TestDeltaDigest:
    def test_sensitive_to_pre_state_and_writes(self):
        writes = {k(1): 5, k(2): 7}
        base = delta_digest(b"\x00" * 16, writes)
        assert delta_digest(b"\x01" * 16, writes) != base
        assert delta_digest(b"\x00" * 16, {k(1): 5, k(2): 8}) != base
        assert delta_digest(b"\x00" * 16, dict(reversed(writes.items()))) == base
