"""The regression gate's comparison logic (no workload execution here)."""

from __future__ import annotations

from repro.bench.suite import BENCH_SCHEMA_VERSION, SUITES, compare_bench


def doc(makespans: dict[str, float], schema: int = BENCH_SCHEMA_VERSION) -> dict:
    """A minimal benchmark document with one sweep point."""
    return {
        "schema_version": schema,
        "suite": {"name": "synthetic"},
        "sweeps": {
            "threads": {
                "parameter": "threads",
                "points": [
                    {
                        "point": 8,
                        "executors": {
                            name: {"makespan_us": us}
                            for name, us in makespans.items()
                        },
                    }
                ],
            }
        },
    }


class TestCompareBench:
    def test_identical_documents_pass(self):
        base = doc({"occ": 100.0, "parallelevm": 50.0})
        assert compare_bench(doc({"occ": 100.0, "parallelevm": 50.0}), base) == []

    def test_within_gate_passes(self):
        base = doc({"occ": 100.0})
        assert compare_bench(doc({"occ": 120.0}), base, gate_pct=25.0) == []

    def test_slowdown_past_gate_fails(self):
        base = doc({"occ": 100.0})
        problems = compare_bench(doc({"occ": 130.0}), base, gate_pct=25.0)
        assert len(problems) == 1
        assert "occ" in problems[0]
        assert "+30.0%" in problems[0]

    def test_speedup_never_fails(self):
        base = doc({"occ": 100.0})
        assert compare_bench(doc({"occ": 10.0}), base, gate_pct=25.0) == []

    def test_missing_executor_fails(self):
        base = doc({"occ": 100.0, "parallelevm": 50.0})
        problems = compare_bench(doc({"occ": 100.0}), base)
        assert any("parallelevm" in p and "missing" in p for p in problems)

    def test_missing_sweep_fails(self):
        base = doc({"occ": 100.0})
        current = doc({"occ": 100.0})
        current["sweeps"] = {}
        problems = compare_bench(current, base)
        assert problems and "missing" in problems[0]

    def test_schema_mismatch_refuses_to_gate(self):
        base = doc({"occ": 100.0}, schema=BENCH_SCHEMA_VERSION + 1)
        problems = compare_bench(doc({"occ": 100.0}), base)
        assert len(problems) == 1
        assert "schema version" in problems[0]

    def test_extra_current_executor_is_fine(self):
        base = doc({"occ": 100.0})
        assert compare_bench(doc({"occ": 100.0, "new": 1.0}), base) == []


class TestSuiteCatalogue:
    def test_known_suites(self):
        assert {"tiny", "small", "default"} <= set(SUITES)

    def test_suite_names_match_keys(self):
        for key, config in SUITES.items():
            assert config.name == key
