"""Streaming telemetry: LogHistogram sketch, windowed registry snapshots,
and SoakTelemetry's JSONL windows."""

from __future__ import annotations

import json

import pytest

from repro.db import SimulatedDiskKV
from repro.obs import LogHistogram, MetricsRegistry, SoakTelemetry
from repro.obs.streaming import format_window_line


class TestLogHistogram:
    def test_quantiles_within_advertised_error(self):
        h = LogHistogram()
        samples = [float(v) for v in range(1, 10_001)]
        for v in samples:
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            got = h.quantile(q)
            assert abs(got - exact) / exact <= h.relative_error + 1e-9

    def test_min_max_quantiles_exact(self):
        h = LogHistogram()
        for v in (3.0, 42.0, 977.0):
            h.observe(v)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 977.0
        assert h.min == 3.0 and h.max == 977.0

    def test_memory_is_bounded_by_bucket_count(self):
        h = LogHistogram()
        buckets_before = len(h.counts)
        for v in range(50_000):
            h.observe(float(v))
        assert len(h.counts) == buckets_before
        assert h.count == 50_000

    def test_empty_summary_is_all_null(self):
        summary = LogHistogram().summary()
        assert summary == {
            "count": 0,
            "mean": None,
            "min": None,
            "max": None,
            "p50": None,
            "p90": None,
            "p99": None,
        }

    def test_rejects_negative_observations(self):
        with pytest.raises(ValueError):
            LogHistogram().observe(-1.0)

    def test_underflow_and_overflow_buckets(self):
        h = LogHistogram(min_edge=10.0, max_edge=1000.0)
        h.observe(0.5)  # underflow
        h.observe(1e9)  # overflow
        sparse = h.nonzero_buckets()
        assert sparse[0] == 1
        assert sparse[max(sparse)] == 1

    def test_default_error_bound_is_about_five_percent(self):
        assert LogHistogram().relative_error == pytest.approx(0.049, abs=0.002)


class TestWindowSnapshot:
    def test_counter_deltas_advance_the_baseline(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc(5)
        assert registry.window_snapshot()["events_total"] == 5
        counter.inc(2)
        assert registry.window_snapshot()["events_total"] == 2
        # No activity -> zero delta, not the cumulative value.
        assert registry.window_snapshot()["events_total"] == 0

    def test_gauges_report_current_value_not_delta(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(7.0)
        registry.window_snapshot()
        gauge.set(3.0)
        assert registry.window_snapshot()["occupancy"] == 3.0

    def test_histogram_deltas_keep_constant_bounds(self):
        registry = MetricsRegistry()
        h = registry.histogram("sizes", [10, 100])
        h.observe(5)
        first = registry.window_snapshot()["sizes"]
        assert first["counts"] == [1, 0, 0]
        assert first["bounds"] == [["-inf", 10], [10, 100], [100, "+inf"]]
        h.observe(50)
        second = registry.window_snapshot()["sizes"]
        assert second["counts"] == [0, 1, 0]
        assert second["count"] == 1
        assert second["bounds"] == first["bounds"]

    def test_labelled_series_use_rendered_names(self):
        registry = MetricsRegistry()
        registry.counter("faults", executor="occ").inc(3)
        assert registry.window_snapshot()["faults{executor=occ}"] == 3

    def test_histogram_overflow_bucket_survives_window_deltas(self):
        registry = MetricsRegistry()
        h = registry.histogram("spans_us", [10, 100])
        h.observe(5_000.0)  # above the last finite edge: +inf bucket
        first = registry.window_snapshot()["spans_us"]
        assert first["buckets"][-1] == "+inf"
        assert first["counts"] == [0, 0, 1]
        h.observe(7_000.0)
        second = registry.window_snapshot()["spans_us"]
        # The overflow count is a per-window delta too, not cumulative.
        assert second["counts"] == [0, 0, 1]
        assert registry.window_snapshot()["spans_us"]["counts"] == [0, 0, 0]

    def test_kinds_classifies_every_series(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.gauge("b_now")
        registry.histogram("c_sizes", [1])
        assert registry.kinds() == {
            "a_total": "counter",
            "b_now": "gauge",
            "c_sizes": "histogram",
        }


class TestHistogramBounds:
    def test_bounds_pair_one_to_one_with_counts(self):
        from repro.obs.metrics import Histogram

        h = Histogram([10, 100])
        h.observe(10)  # an edge value lands in the bucket it lower-bounds
        exported = h.as_value()
        assert len(exported["bounds"]) == len(exported["counts"])
        assert exported["bounds"][1] == [10, 100]
        assert exported["counts"] == [0, 1, 0]


def _feed(telemetry, blocks, start=100, tx_count=4, latency_us=500.0):
    snapshots = []
    for i in range(blocks):
        snap = telemetry.record_block(
            start + i,
            tx_count=tx_count,
            gas_used=21_000 * tx_count,
            latency_us=latency_us,
            tx_latencies_us=[100.0 * (j + 1) for j in range(tx_count)],
        )
        if snap is not None:
            snapshots.append(snap)
    return snapshots


class TestSoakTelemetry:
    def test_window_closes_every_n_blocks(self):
        telemetry = SoakTelemetry(window_blocks=3)
        snapshots = _feed(telemetry, 7)
        assert len(snapshots) == 2
        assert snapshots[0]["first_block"] == 100
        assert snapshots[0]["last_block"] == 102
        assert snapshots[1]["first_block"] == 103
        tail = telemetry.finish()
        assert tail["throughput"]["blocks"] == 1
        assert telemetry.finish() is None  # nothing pending after the flush

    def test_window_and_cumulative_scopes_diverge(self):
        telemetry = SoakTelemetry(window_blocks=2)
        snapshots = _feed(telemetry, 4)
        assert snapshots[1]["throughput"]["txs"] == 8
        assert snapshots[1]["cumulative"]["throughput"]["txs"] == 16

    def test_snapshot_line_is_sorted_single_line_json(self):
        telemetry = SoakTelemetry(window_blocks=1)
        [snap] = _feed(telemetry, 1)
        line = SoakTelemetry.snapshot_line(snap)
        assert "\n" not in line
        parsed = json.loads(line)
        assert parsed == snap
        assert line == json.dumps(parsed, sort_keys=True)

    def test_zero_blocks_summary_is_valid_and_empty(self):
        telemetry = SoakTelemetry(window_blocks=5)
        assert telemetry.finish() is None
        summary = telemetry.summary()
        assert summary["windows"] == 0
        assert summary["first_block"] is None
        assert summary["throughput"]["tx_per_s"] == 0.0
        assert summary["latency_tx_us"]["p50"] is None
        json.dumps(summary)  # must serialise

    def test_counters_section_folds_labels_and_skips_gauges(self):
        registry = MetricsRegistry()
        registry.counter("faults", executor="occ").inc(2)
        registry.counter("faults", executor="2pl").inc(3)
        registry.gauge("occupancy").set(9.0)
        telemetry = SoakTelemetry(window_blocks=1, registry=registry)
        [snap] = _feed(telemetry, 1)
        assert snap["counters"] == {"faults": 5}

    def test_cache_section_uses_db_read_counters(self):
        db = SimulatedDiskKV(cache_capacity=8)
        db.write("k", 1)
        telemetry = SoakTelemetry(window_blocks=1, db=db)
        db.read("k")  # cold: disk read
        db.read("k")  # warm: cache read
        [snap] = _feed(telemetry, 1)
        cache = snap["cache"]
        assert cache["window_disk_reads"] == 1
        assert cache["window_cache_reads"] == 1
        assert cache["hit_rate"] == 0.5
        assert cache["capacity"] == 8
        db.read("k")
        [snap2] = _feed(telemetry, 1)
        assert snap2["cache"]["window_disk_reads"] == 0  # delta, not total
        assert snap2["cache"]["hit_rate"] == 1.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SoakTelemetry(window_blocks=0)

    def test_format_window_line_handles_empty_quantiles(self):
        telemetry = SoakTelemetry(window_blocks=1)
        snap = telemetry.record_block(
            5, tx_count=0, gas_used=0, latency_us=0.0, tx_latencies_us=[]
        )
        line = format_window_line(snap)
        assert "p50/p90/p99 -/-/-" in line

    def test_empty_window_with_lifecycle_and_slo_sections(self):
        from repro.obs.lifecycle import LifecycleTracker, SloConfig, SloMonitor

        tracker = LifecycleTracker()
        slo = SloMonitor(SloConfig())
        telemetry = SoakTelemetry(window_blocks=1, lifecycle=tracker, slo=slo)
        snap = telemetry.record_block(
            5, tx_count=0, gas_used=0, latency_us=0.0, tx_latencies_us=[]
        )
        # No terminal txs this window: sections are present, valid, null.
        assert snap["lifecycle"]["committed"] == 0
        assert snap["lifecycle"]["latency_us"]["p99"] is None
        assert snap["slo"]["latency"]["total"] == 0
        json.dumps(snap)
        line = SoakTelemetry.snapshot_line(snap)
        assert "\n" not in line
