"""The ASCII table/figure renderers and the bench harness utilities."""

from __future__ import annotations

from repro.bench.report import render_histogram, render_series, render_table


class TestRenderTable:
    def test_columns_align(self):
        text = render_table(
            "T", ["name", "value"], [["aa", 1], ["a-long-name", 2.5]]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        header = lines[2]
        rows = lines[4:6]
        assert header.index("value") == rows[0].index("1")

    def test_floats_formatted(self):
        text = render_table("T", ["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "T" in text


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series(
            "S", "x", [1, 2, 3], {"a": [0.1, 0.2, 0.3], "b": [9, 8, 7]}
        )
        lines = text.splitlines()
        assert len([l for l in lines if l and l[0].isdigit()]) == 3
        assert "a" in lines[2] and "b" in lines[2]


class TestRenderHistogram:
    def test_counts_and_shares(self):
        text = render_histogram("H", [0, 1, 2, 3], [1, 3, 0])
        assert "25.0%" in text
        assert "75.0%" in text
        assert " 0.0%" in text

    def test_peak_bar_is_longest(self):
        text = render_histogram("H", [0, 1, 2], [1, 4], width=20)
        lines = [l for l in text.splitlines() if "|" in l]
        bars = [l.split("|")[1].count("#") for l in lines]
        assert bars[1] > bars[0] > 0

    def test_zero_count_has_no_bar(self):
        text = render_histogram("H", [0, 1, 2], [0, 5])
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].split("|")[1].count("#") == 0


class TestHarness:
    def test_executor_suite_order(self):
        from repro.bench.harness import executor_suite

        names = [ex.name for ex in executor_suite(4)]
        assert names == ["2pl", "occ", "block-stm", "parallelevm"]
        assert all(ex.threads == 4 for ex in executor_suite(4))

    def test_speedup_summary_stats(self):
        from repro.bench.harness import SpeedupSummary

        summary = SpeedupSummary("x", [1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert "x" in summary.describe()

    def test_measure_speedups_checks_state(self):
        from repro.bench.harness import measure_speedups, standard_chain
        from repro.concurrency import SerialExecutor
        from repro.workloads import MainnetConfig, MainnetWorkload

        chain = standard_chain(accounts=60, tokens=2, amm_pairs=1)
        block = MainnetWorkload(chain, MainnetConfig(txs_per_block=10)).block(1)
        summaries = measure_speedups(
            chain, [block], [SerialExecutor()], check_state=True
        )
        assert summaries["serial"].speedups == [1.0, 1.0]
