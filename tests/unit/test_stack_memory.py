"""EVM stack and memory semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OutOfGas, StackOverflow, StackUnderflow
from repro.evm.memory import Memory
from repro.evm.stack import STACK_LIMIT, Stack


class TestStack:
    def test_push_pop(self):
        s = Stack()
        s.push(1)
        s.push(2)
        assert s.pop() == 2
        assert s.pop() == 1

    def test_pop_empty_raises(self):
        with pytest.raises(StackUnderflow):
            Stack().pop()

    def test_pop_n_orders_top_first(self):
        s = Stack()
        for v in (1, 2, 3):
            s.push(v)
        assert s.pop_n(2) == (3, 2)
        assert len(s) == 1

    def test_pop_n_underflow(self):
        s = Stack()
        s.push(1)
        with pytest.raises(StackUnderflow):
            s.pop_n(2)

    def test_pop_n_zero(self):
        assert Stack().pop_n(0) == ()

    def test_peek(self):
        s = Stack()
        s.push(10)
        s.push(20)
        assert s.peek() == 20
        assert s.peek(1) == 10
        with pytest.raises(StackUnderflow):
            s.peek(2)

    def test_dup(self):
        s = Stack()
        s.push(7)
        s.push(8)
        s.dup(2)
        assert s.as_list() == [7, 8, 7]

    def test_dup_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack().dup(1)

    def test_swap(self):
        s = Stack()
        for v in (1, 2, 3):
            s.push(v)
        s.swap(2)
        assert s.as_list() == [3, 2, 1]

    def test_swap_underflow(self):
        s = Stack()
        s.push(1)
        with pytest.raises(StackUnderflow):
            s.swap(1)

    def test_overflow_at_limit(self):
        s = Stack()
        for i in range(STACK_LIMIT):
            s.push(i)
        with pytest.raises(StackOverflow):
            s.push(0)

    @given(st.lists(st.integers(min_value=0, max_value=2**256 - 1), max_size=50))
    def test_push_pop_is_lifo(self, values):
        s = Stack()
        for v in values:
            s.push(v)
        popped = [s.pop() for _ in values]
        assert popped == list(reversed(values))


class TestMemory:
    def test_starts_empty(self):
        assert len(Memory()) == 0

    def test_expansion_rounds_to_words(self):
        m = Memory()
        new_words = m.expand_to(0, 1)
        assert new_words == 1
        assert len(m) == 32

    def test_expansion_returns_incremental_words(self):
        m = Memory()
        assert m.expand_to(0, 64) == 2
        assert m.expand_to(0, 64) == 0
        assert m.expand_to(64, 1) == 1

    def test_zero_size_never_expands(self):
        m = Memory()
        assert m.expand_to(10_000_000, 0) == 0
        assert len(m) == 0

    def test_word_roundtrip(self):
        m = Memory()
        m.expand_to(0, 32)
        m.write_word(0, 0xDEADBEEF)
        assert m.read_word(0) == 0xDEADBEEF

    def test_unaligned_write(self):
        m = Memory()
        m.expand_to(0, 64)
        m.write_word(5, (1 << 255) | 0xAB)
        assert m.read_word(5) == (1 << 255) | 0xAB

    def test_byte_write(self):
        m = Memory()
        m.expand_to(0, 32)
        m.write_byte(3, 0x1FF)  # masked to one byte
        assert m.read(3, 1) == b"\xff"

    def test_fresh_memory_is_zeroed(self):
        m = Memory()
        m.expand_to(0, 32)
        assert m.read(0, 32) == b"\x00" * 32

    def test_read_write_bytes(self):
        m = Memory()
        m.expand_to(0, 64)
        m.write(10, b"hello")
        assert m.read(10, 5) == b"hello"
        assert m.read(8, 2) == b"\x00\x00"

    def test_unpayable_expansion_raises(self):
        with pytest.raises(OutOfGas):
            Memory().expand_to(1 << 30, 32)

    def test_size_words(self):
        m = Memory()
        m.expand_to(0, 33)
        assert m.size_words == 2
