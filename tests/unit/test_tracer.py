"""SSA-log generation during real executions (§5.2, Figure 5's shape)."""

from __future__ import annotations

from repro.contracts import balance_slot, encode_call
from repro.core.ssa_log import PseudoOp
from repro.core.tracer import SSATracer
from repro.evm.opcodes import Op
from repro.primitives import make_address
from repro.state.keys import balance_key, nonce_key, storage_key

from ..conftest import transfer_from_tx, transfer_tx


def opcodes_of(log):
    return [e.opcode for e in log.entries]


class TestERC20TransferLog:
    """The paper's running example: the log of one token transfer."""

    def _trace(self, world, run_tx, token, alice, bob, amount=300):
        tracer = SSATracer()
        result = run_tx(world, transfer_tx(alice, token, bob, amount), tracer=tracer)
        assert result.success
        return tracer.log, result

    def test_log_is_much_smaller_than_instruction_count(
        self, world, run_tx, token, alice, bob
    ):
        log, result = self._trace(world, run_tx, token, alice, bob)
        assert 0 < len(log) < result.ops_executed / 2

    def test_balance_slots_are_type1_roots(self, world, run_tx, token, alice, bob):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        assert storage_key(token, balance_slot(alice)) in log.direct_reads
        assert storage_key(token, balance_slot(bob)) in log.direct_reads

    def test_stores_recorded(self, world, run_tx, token, alice, bob):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        assert storage_key(token, balance_slot(alice)) in log.latest_writes
        assert storage_key(token, balance_slot(bob)) in log.latest_writes

    def test_balance_check_becomes_control_flow_guard(
        self, world, run_tx, token, alice, bob
    ):
        """require(balances[from] >= amount) compiles to LT + JUMPI; the
        JUMPI condition depends on the loaded balance, so the tracer must
        emit an ASSERT_EQ control-flow guard (paper Figure 5's L3)."""
        log, _ = self._trace(world, run_tx, token, alice, bob)
        guards = [e for e in log.entries if e.opcode == PseudoOp.ASSERT_EQ]
        assert guards, "no control-flow guards generated"
        # At least one guard's defining entry is an LT over the balance.
        defining = [log.entries[g.def_stack[0]] for g in guards]
        assert any(d.opcode == Op.LT for d in defining)

    def test_sub_and_add_entries_chain_from_loads(
        self, world, run_tx, token, alice, bob
    ):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        from_load = log.direct_reads[storage_key(token, balance_slot(alice))][0]
        slice_ = log.dependents_of([from_load])
        sliced_ops = {log.entries[lsn].opcode for lsn in slice_}
        assert Op.SUB in sliced_ops  # balances[from] -= amount
        assert Op.SSTORE in sliced_ops

    def test_recipient_chain_is_independent_of_sender_chain(
        self, world, run_tx, token, alice, bob
    ):
        """The paper's key insight: the credit to balances[to] does not
        depend on balances[from], so a conflict on the sender's balance
        leaves the recipient's ADD/SSTORE outside the redo slice."""
        log, _ = self._trace(world, run_tx, token, alice, bob)
        from_load = log.direct_reads[storage_key(token, balance_slot(alice))][0]
        to_store = log.latest_writes[storage_key(token, balance_slot(bob))]
        assert to_store not in log.dependents_of([from_load])

    def test_intrinsic_nonce_chain(self, world, run_tx, token, alice, bob):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        assert nonce_key(alice) in log.direct_reads
        assert nonce_key(alice) in log.latest_writes

    def test_fee_guard_on_sender_balance(self, world, run_tx, token, alice, bob):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        guards = [e for e in log.entries if e.opcode == PseudoOp.GUARD_GE]
        assert any(
            log.entries[g.def_stack[0]].key == balance_key(alice) for g in guards
        )

    def test_sstore_entries_carry_gas_metadata(
        self, world, run_tx, token, alice, bob
    ):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        sstores = [e for e in log.entries if e.opcode == Op.SSTORE]
        assert sstores
        for entry in sstores:
            assert entry.gas_dynamic
            assert entry.meta is not None and "current" in entry.meta

    def test_log_entries_all_reference_earlier_defs(
        self, world, run_tx, token, alice, bob
    ):
        """SSA invariant: every def points at a strictly earlier entry."""
        log, _ = self._trace(world, run_tx, token, alice, bob)
        for entry in log.entries:
            for dep in entry.def_stack:
                if dep is not None:
                    assert dep < entry.lsn
            if entry.def_storage is not None:
                assert entry.def_storage < entry.lsn
            for _, _, lsn, _ in entry.def_memory:
                assert lsn < entry.lsn

    def test_redoable_by_default(self, world, run_tx, token, alice, bob):
        log, _ = self._trace(world, run_tx, token, alice, bob)
        assert log.redoable


class TestConstantFolding:
    def test_constant_computation_creates_no_entries(self, world, run_tx, alice):
        """Pure-constant programs produce an (almost) empty EVM log — only
        the intrinsic envelope entries exist (§5.2.1 folding)."""
        from repro.evm.assembler import assemble

        contract = make_address(0x70FD)
        world.set_code(
            contract,
            assemble("PUSH 1 PUSH 2 ADD PUSH0 MSTORE PUSH 32 PUSH0 RETURN"),
        )
        tracer = SSATracer()
        from repro.evm.message import Transaction

        tx = Transaction(sender=alice, to=contract, gas_limit=100_000)
        result = run_tx(world, tx, tracer=tracer)
        assert result.success
        evm_ops = [
            e
            for e in tracer.log.entries
            if e.opcode < 0x100 or e.opcode == PseudoOp.ASSERT_EQ
        ]
        assert evm_ops == []

    def test_sload_always_logged_even_if_unused(self, world, run_tx, alice):
        from repro.evm.assembler import assemble
        from repro.evm.message import Transaction

        contract = make_address(0x70FE)
        world.set_code(contract, assemble("PUSH 5 SLOAD POP STOP"))
        tracer = SSATracer()
        tx = Transaction(sender=alice, to=contract, gas_limit=100_000)
        assert run_tx(world, tx, tracer=tracer).success
        assert any(e.opcode == Op.SLOAD for e in tracer.log.entries)


class TestCrossFrameTracking:
    def test_amm_swap_links_token_balances_to_reserves(
        self, amm_world, run_tx, alice
    ):
        """A swap's payout amount derives from the reserves; the nested
        token transfer's balance writes must land in the reserves' DUG
        slice (calldata/returndata shadow propagation across CALL)."""
        world, pair, token0, token1 = amm_world
        from repro.evm.message import Transaction

        tracer = SSATracer()
        tx = Transaction(
            sender=alice,
            to=pair,
            data=encode_call("swap(uint256,uint256,address)", 10**6, 1, alice),
            gas_limit=800_000,
        )
        result = run_tx(world, tx, tracer=tracer)
        assert result.success
        log = tracer.log

        reserve_out_load = log.direct_reads[storage_key(pair, 3)][0]
        slice_ = set(log.dependents_of([reserve_out_load]))
        # The recipient's token1 balance write depends on amountOut, which
        # depends on the output reserve -> the write is inside the slice.
        recipient_store = log.latest_writes[
            storage_key(token1, balance_slot(alice))
        ]
        assert recipient_store in slice_

    def test_reverted_frame_marks_log_not_redoable(self, world, run_tx, alice):
        from repro.evm.assembler import assemble
        from repro.evm.message import Transaction
        from repro.primitives import address_to_word

        callee = make_address(0xCE)
        caller = make_address(0xCF)
        world.set_code(callee, assemble("PUSH0 PUSH0 REVERT"))
        world.set_code(
            caller,
            assemble(
                f"PUSH 0 PUSH0 PUSH 0 PUSH0 PUSH 0 "
                f"PUSH {address_to_word(callee)} PUSH 100000 CALL POP STOP"
            ),
        )
        tracer = SSATracer()
        tx = Transaction(sender=alice, to=caller, gas_limit=400_000)
        result = run_tx(world, tx, tracer=tracer)
        assert result.success  # the caller tolerates the failed call
        assert not tracer.log.redoable

    def test_transfer_from_has_allowance_guard_chain(
        self, world, run_tx, token, alice, bob, carol
    ):
        from repro.contracts import allowance_slot

        world.set_storage(token, allowance_slot(alice, bob), 500)
        tracer = SSATracer()
        result = run_tx(
            world, transfer_from_tx(bob, token, alice, carol, 200), tracer=tracer
        )
        assert result.success
        log = tracer.log
        allowance_load = log.direct_reads[
            storage_key(token, allowance_slot(alice, bob))
        ][0]
        slice_ = [log.entries[lsn] for lsn in log.dependents_of([allowance_load])]
        assert any(e.opcode == PseudoOp.ASSERT_EQ for e in slice_)
        assert any(e.opcode == Op.SSTORE for e in slice_)


class TestTrackingOverheadAccounting:
    def test_tracer_charges_tracking_meter(self, world, run_tx, token, alice, bob):
        from repro.sim.meter import CostMeter

        tracer = SSATracer(meter=CostMeter())
        result = run_tx(world, transfer_tx(alice, token, bob, 1), tracer=tracer)
        assert result.success
        assert tracer.meter.tracking_us > 0
        assert tracer.meter.log_entries == len(tracer.log)
        assert tracer.events > 0
