"""The simulated machine: clock, meters, list scheduling, event-driven runs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.obs import TraceRecorder
from repro.sim.clock import SimClock
from repro.sim.cost import CostModel
from repro.sim.machine import (
    SimMachine,
    Task,
    list_schedule,
    list_schedule_makespan,
)
from repro.sim.meter import NULL_METER, CostMeter, NullMeter


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        clock.advance_by(2.0)
        assert clock.now_us == 7.0

    def test_backwards_rejected(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError, match="moved backwards"):
            clock.advance_to(5.0)
        with pytest.raises(SimulationError, match="non-negative"):
            clock.advance_by(-1.0)

    def test_nan_rejected(self):
        nan = float("nan")
        with pytest.raises(SimulationError, match="NaN"):
            SimClock(nan)
        clock = SimClock()
        with pytest.raises(SimulationError, match="NaN"):
            clock.advance_to(nan)
        with pytest.raises(SimulationError, match="non-negative"):
            clock.advance_by(nan)
        assert clock.now_us == 0.0  # failed advances leave time untouched


class TestMeter:
    def test_charges_accumulate_by_category(self):
        meter = CostMeter()
        meter.charge_compute(1.5)
        meter.charge_storage(20.0, cold=True)
        meter.charge_storage(0.5, cold=False)
        meter.charge_tracking(0.1, entries=2)
        assert meter.total_us == pytest.approx(22.1)
        assert meter.ops == 1
        assert meter.storage_reads == 2
        assert meter.storage_cold_reads == 1
        assert meter.log_entries == 2

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.charge_compute(1.0)
        b.charge_storage(2.0, cold=True)
        merged = a.merged_with(b)
        assert merged.total_us == pytest.approx(3.0)

    def test_as_dict(self):
        meter = CostMeter()
        meter.charge_compute(1.5)
        meter.charge_storage(20.0, cold=True)
        d = meter.as_dict()
        assert d["compute_us"] == pytest.approx(1.5)
        assert d["storage_us"] == pytest.approx(20.0)
        assert d["total_us"] == pytest.approx(21.5)
        assert d["storage_cold_reads"] == 1


class TestNullMeter:
    def test_is_a_cost_meter(self):
        assert isinstance(NULL_METER, CostMeter)

    def test_charges_are_no_ops(self):
        meter = NullMeter()
        meter.charge_compute(5.0)
        meter.charge_storage(38.0, cold=True)
        meter.charge_tracking(1.0, entries=3)
        assert meter.total_us == 0.0
        assert meter.ops == 0
        assert meter.log_entries == 0
        assert all(v == 0 for v in meter.as_dict().values())


class TestListSchedule:
    def test_single_thread_is_sum(self):
        assert list_schedule_makespan([3, 4, 5], 1) == 12

    def test_many_threads_is_max(self):
        assert list_schedule_makespan([3, 4, 5], 8) == 5

    def test_greedy_assignment(self):
        # In-order greedy: [4,3,3] on 2 threads -> t1: 4, t2: 3+3 = 6.
        assert list_schedule_makespan([4, 3, 3], 2) == 6

    def test_per_task_overhead(self):
        assert list_schedule_makespan([1, 1], 1, per_task_overhead_us=0.5) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            list_schedule_makespan([1], 0)
        with pytest.raises(SimulationError):
            list_schedule_makespan([-1], 2)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    def test_bounds(self, durations, threads):
        makespan = list_schedule_makespan(durations, threads)
        total = sum(durations)
        assert makespan <= total + 1e-6
        assert makespan >= max(max(durations), total / threads) - 1e-6


class _BatchScheduler:
    """Feeds a fixed batch of tasks, records completion order."""

    def __init__(self, durations):
        self.todo = [Task(kind="t", duration_us=d, payload=i)
                     for i, d in enumerate(durations)]
        self.completed: list[tuple[int, float]] = []

    def next_task(self, worker_id, now_us):
        return self.todo.pop(0) if self.todo else None

    def on_complete(self, task, now_us):
        self.completed.append((task.payload, now_us))

    def done(self):
        return not self.todo and True


class TestSimMachine:
    def test_batch_matches_list_schedule(self):
        durations = [5.0, 3.0, 8.0, 1.0, 2.0]
        scheduler = _BatchScheduler(durations)
        makespan = SimMachine(2).run(scheduler)
        assert makespan == pytest.approx(list_schedule_makespan(durations, 2))

    def test_single_worker_serializes(self):
        scheduler = _BatchScheduler([1.0, 2.0, 3.0])
        assert SimMachine(1).run(scheduler) == pytest.approx(6.0)

    def test_completion_times_monotone(self):
        scheduler = _BatchScheduler([4.0, 1.0, 1.0, 1.0])
        SimMachine(2).run(scheduler)
        times = [t for _, t in scheduler.completed]
        assert times == sorted(times)

    def test_deterministic(self):
        d = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        r1 = SimMachine(3).run(_BatchScheduler(list(d)))
        r2 = SimMachine(3).run(_BatchScheduler(list(d)))
        assert r1 == r2

    def test_deadlock_detection(self):
        class Stuck:
            def next_task(self, worker_id, now_us):
                return None

            def on_complete(self, task, now_us):
                pass

            def done(self):
                return False

        with pytest.raises(SimulationError):
            SimMachine(2).run(Stuck())

    def test_dynamic_task_injection(self):
        """A completion may enqueue new work (the OCC/redo pattern)."""

        class TwoPhase:
            def __init__(self):
                self.phase1 = [Task(kind="a", duration_us=2.0)]
                self.phase2: list[Task] = []
                self.finished = 0

            def next_task(self, worker_id, now_us):
                if self.phase1:
                    return self.phase1.pop()
                if self.phase2:
                    return self.phase2.pop()
                return None

            def on_complete(self, task, now_us):
                if task.kind == "a":
                    self.phase2.append(Task(kind="b", duration_us=3.0))
                else:
                    self.finished += 1

            def done(self):
                return self.finished == 1

        scheduler = TwoPhase()
        assert SimMachine(4).run(scheduler) == pytest.approx(5.0)

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            SimMachine(0)

    def test_zero_duration_tasks(self):
        """Zero-cost tasks complete instantly without stalling the machine."""
        scheduler = _BatchScheduler([0.0, 0.0, 2.0, 0.0])
        assert SimMachine(2).run(scheduler) == pytest.approx(2.0)
        assert len(scheduler.completed) == 4

    def test_all_zero_duration(self):
        scheduler = _BatchScheduler([0.0] * 5)
        assert SimMachine(3).run(scheduler) == 0.0
        assert len(scheduler.completed) == 5

    def test_observer_sees_every_task(self):
        durations = [3.0, 1.0, 4.0, 1.0, 5.0]
        trace = TraceRecorder()
        makespan = SimMachine(2, observer=trace).run(
            _BatchScheduler(list(durations))
        )
        assert len(trace.spans) == len(durations)
        assert trace.busy_us() == pytest.approx(sum(durations))
        assert max(s.end_us for s in trace.spans) == pytest.approx(makespan)
        for span in trace.spans:
            assert 0 <= span.worker_id < 2
            assert span.end_us >= span.start_us

    def test_observer_does_not_change_makespan(self):
        durations = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        bare = SimMachine(3).run(_BatchScheduler(list(durations)))
        observed = SimMachine(3, observer=TraceRecorder()).run(
            _BatchScheduler(list(durations))
        )
        assert bare == observed

    def test_observed_trace_byte_identical_across_runs(self):
        """Tie-breaking (equal finish times) must be deterministic, and the
        exported trace must not leak run-varying state like task ids."""
        durations = [2.0, 2.0, 2.0, 2.0, 1.0, 1.0]

        def one_run() -> str:
            trace = TraceRecorder()
            SimMachine(2, observer=trace).run(_BatchScheduler(list(durations)))
            return trace.to_chrome_json()

        assert one_run() == one_run()


class TestListSchedulePlacements:
    def test_placements_cover_all_tasks(self):
        makespan, placements = list_schedule([4.0, 3.0, 3.0], 2)
        assert makespan == 6.0
        assert [(w, s, e) for w, s, e in placements] == [
            (0, 0.0, 4.0),
            (1, 0.0, 3.0),
            (1, 3.0, 6.0),
        ]

    def test_placements_agree_with_makespan(self):
        durations = [5.0, 1.0, 2.0, 8.0, 1.0]
        makespan, placements = list_schedule(durations, 3, per_task_overhead_us=0.5)
        assert makespan == list_schedule_makespan(
            durations, 3, per_task_overhead_us=0.5
        )
        assert max(end for _, _, end in placements) == makespan
        for (_, start, end), duration in zip(placements, durations):
            assert end - start == pytest.approx(duration + 0.5)


class TestCostModel:
    def test_hash_cost_scales_with_words(self):
        cm = CostModel()
        assert cm.hash_cost(64) > cm.hash_cost(32) > cm.hash_cost(0)

    def test_copy_cost(self):
        cm = CostModel()
        assert cm.copy_cost(0) == 0
        assert cm.copy_cost(33) == 2 * cm.copy_word_us
