"""The simulated machine: clock, meters, list scheduling, event-driven runs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.cost import CostModel
from repro.sim.machine import SimMachine, Task, list_schedule_makespan
from repro.sim.meter import CostMeter


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        clock.advance_by(2.0)
        assert clock.now_us == 7.0

    def test_backwards_rejected(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)


class TestMeter:
    def test_charges_accumulate_by_category(self):
        meter = CostMeter()
        meter.charge_compute(1.5)
        meter.charge_storage(20.0, cold=True)
        meter.charge_storage(0.5, cold=False)
        meter.charge_tracking(0.1, entries=2)
        assert meter.total_us == pytest.approx(22.1)
        assert meter.ops == 1
        assert meter.storage_reads == 2
        assert meter.storage_cold_reads == 1
        assert meter.log_entries == 2

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.charge_compute(1.0)
        b.charge_storage(2.0, cold=True)
        merged = a.merged_with(b)
        assert merged.total_us == pytest.approx(3.0)


class TestListSchedule:
    def test_single_thread_is_sum(self):
        assert list_schedule_makespan([3, 4, 5], 1) == 12

    def test_many_threads_is_max(self):
        assert list_schedule_makespan([3, 4, 5], 8) == 5

    def test_greedy_assignment(self):
        # In-order greedy: [4,3,3] on 2 threads -> t1: 4, t2: 3+3 = 6.
        assert list_schedule_makespan([4, 3, 3], 2) == 6

    def test_per_task_overhead(self):
        assert list_schedule_makespan([1, 1], 1, per_task_overhead_us=0.5) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            list_schedule_makespan([1], 0)
        with pytest.raises(SimulationError):
            list_schedule_makespan([-1], 2)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    def test_bounds(self, durations, threads):
        makespan = list_schedule_makespan(durations, threads)
        total = sum(durations)
        assert makespan <= total + 1e-6
        assert makespan >= max(max(durations), total / threads) - 1e-6


class _BatchScheduler:
    """Feeds a fixed batch of tasks, records completion order."""

    def __init__(self, durations):
        self.todo = [Task(kind="t", duration_us=d, payload=i)
                     for i, d in enumerate(durations)]
        self.completed: list[tuple[int, float]] = []

    def next_task(self, worker_id, now_us):
        return self.todo.pop(0) if self.todo else None

    def on_complete(self, task, now_us):
        self.completed.append((task.payload, now_us))

    def done(self):
        return not self.todo and True


class TestSimMachine:
    def test_batch_matches_list_schedule(self):
        durations = [5.0, 3.0, 8.0, 1.0, 2.0]
        scheduler = _BatchScheduler(durations)
        makespan = SimMachine(2).run(scheduler)
        assert makespan == pytest.approx(list_schedule_makespan(durations, 2))

    def test_single_worker_serializes(self):
        scheduler = _BatchScheduler([1.0, 2.0, 3.0])
        assert SimMachine(1).run(scheduler) == pytest.approx(6.0)

    def test_completion_times_monotone(self):
        scheduler = _BatchScheduler([4.0, 1.0, 1.0, 1.0])
        SimMachine(2).run(scheduler)
        times = [t for _, t in scheduler.completed]
        assert times == sorted(times)

    def test_deterministic(self):
        d = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        r1 = SimMachine(3).run(_BatchScheduler(list(d)))
        r2 = SimMachine(3).run(_BatchScheduler(list(d)))
        assert r1 == r2

    def test_deadlock_detection(self):
        class Stuck:
            def next_task(self, worker_id, now_us):
                return None

            def on_complete(self, task, now_us):
                pass

            def done(self):
                return False

        with pytest.raises(SimulationError):
            SimMachine(2).run(Stuck())

    def test_dynamic_task_injection(self):
        """A completion may enqueue new work (the OCC/redo pattern)."""

        class TwoPhase:
            def __init__(self):
                self.phase1 = [Task(kind="a", duration_us=2.0)]
                self.phase2: list[Task] = []
                self.finished = 0

            def next_task(self, worker_id, now_us):
                if self.phase1:
                    return self.phase1.pop()
                if self.phase2:
                    return self.phase2.pop()
                return None

            def on_complete(self, task, now_us):
                if task.kind == "a":
                    self.phase2.append(Task(kind="b", duration_us=3.0))
                else:
                    self.finished += 1

            def done(self):
                return self.finished == 1

        scheduler = TwoPhase()
        assert SimMachine(4).run(scheduler) == pytest.approx(5.0)

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            SimMachine(0)


class TestCostModel:
    def test_hash_cost_scales_with_words(self):
        cm = CostModel()
        assert cm.hash_cost(64) > cm.hash_cost(32) > cm.hash_cost(0)

    def test_copy_cost(self):
        cm = CostModel()
        assert cm.copy_cost(0) == 0
        assert cm.copy_cost(33) == 2 * cm.copy_word_us
