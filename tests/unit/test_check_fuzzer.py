"""The block fuzzer: determinism, family coverage, well-formedness."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.check import BlockFuzzer, FuzzConfig

SMALL = FuzzConfig(txs_per_block=12, accounts=16, tokens=2, amm_pairs=1)


@pytest.fixture(scope="module")
def fuzzer() -> BlockFuzzer:
    return BlockFuzzer(SMALL)


def tx_tuple(tx):
    return (tx.sender, tx.to, tx.value, tx.data, tx.gas_limit, tx.nonce)


class TestDeterminism:
    def test_same_seed_same_block(self, fuzzer):
        first = fuzzer.block(3)
        second = fuzzer.block(3)
        assert [tx_tuple(t) for t in first.txs] == [
            tx_tuple(t) for t in second.txs
        ]
        assert first.number == second.number

    def test_blocks_independent_of_generation_order(self):
        # block(5) must be identical whether or not other seeds were drawn
        # first — the property the shrinker and CI seed matrix rely on.
        lone = BlockFuzzer(SMALL).block(5)
        warmed = BlockFuzzer(SMALL)
        for seed in range(5):
            warmed.block(seed)
        assert [tx_tuple(t) for t in warmed.block(5).txs] == [
            tx_tuple(t) for t in lone.txs
        ]

    def test_distinct_seeds_differ(self, fuzzer):
        assert [tx_tuple(t) for t in fuzzer.block(0).txs] != [
            tx_tuple(t) for t in fuzzer.block(1).txs
        ]

    def test_generation_does_not_mutate_genesis(self, fuzzer):
        before = fuzzer.chain.fresh_world().state_root()
        fuzzer.block(9)
        assert fuzzer.chain.fresh_world().state_root() == before


class TestFamilyCoverage:
    def test_all_families_appear_across_seeds(self, fuzzer):
        seen = set()
        for seed in range(12):
            seen |= set(fuzzer.family_counts(seed))
        expected = {name for name, weight, _ in fuzzer._families if weight > 0}
        assert seen == expected

    def test_counts_sum_to_block_size(self, fuzzer):
        block = fuzzer.block(4)
        counts = fuzzer.family_counts(4)
        assert sum(counts.values()) == len(block.txs)
        assert len(block.txs) >= SMALL.txs_per_block


class TestWellFormedness:
    def test_nonces_sequential_per_sender(self, fuzzer):
        for seed in range(6):
            per_sender = defaultdict(list)
            for tx in fuzzer.block(seed).txs:
                per_sender[tx.sender].append(tx.nonce)
            for nonces in per_sender.values():
                assert nonces == list(range(len(nonces)))

    def test_tx_indices_are_block_positions(self, fuzzer):
        block = fuzzer.block(0)
        assert [tx.tx_index for tx in block.txs] == list(range(len(block.txs)))

    def test_block_numbers_track_seed(self, fuzzer):
        assert fuzzer.block(7).number == fuzzer.block(0).number + 7
