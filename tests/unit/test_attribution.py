"""Hot-slot attribution: folding per-key series into ranked reports."""

from __future__ import annotations

from repro.obs import (
    MetricsRegistry,
    attribution_table,
    collect_attribution,
    contract_attribution_table,
)


def registry_with_trouble():
    m = MetricsRegistry()
    m.counter("conflict_keys", key="slotA", contract="aa01").inc(3)
    m.counter("conflict_keys", key="slotB", contract="bb02").inc(1)
    m.counter("stm_abort_keys", key="slotA", contract="aa01").inc(2)
    m.counter("redo_induced_slices", key="slotC", contract="aa01").inc(4)
    m.counter("redo_induced_ops", key="slotC", contract="aa01").inc(40)
    return m


class TestCollect:
    def test_none_when_no_series(self):
        assert collect_attribution(MetricsRegistry()) is None

    def test_folds_all_series_per_key(self):
        report = collect_attribution(registry_with_trouble())
        by_key = {slot.key: slot for slot in report.slots}
        assert by_key["slotA"].conflicts == 3
        assert by_key["slotA"].stm_aborts == 2
        assert by_key["slotC"].redo_slices == 4
        assert by_key["slotC"].redo_ops == 40
        assert by_key["slotB"].score == 1

    def test_ranked_hottest_first(self):
        report = collect_attribution(registry_with_trouble())
        assert [slot.key for slot in report.slots] == ["slotA", "slotC", "slotB"]

    def test_contract_rollup(self):
        report = collect_attribution(registry_with_trouble())
        contracts = {agg.contract: agg for agg in report.by_contract()}
        assert contracts["aa01"].conflicts == 3
        assert contracts["aa01"].redo_ops == 40
        assert contracts["bb02"].conflicts == 1

    def test_as_dict_top_n(self):
        d = collect_attribution(registry_with_trouble()).as_dict(top=2)
        assert len(d["hot_slots"]) == 2
        assert d["total_keys"] == 3
        assert d["hot_slots"][0]["key"] == "slotA"

    def test_tables_render(self):
        report = collect_attribution(registry_with_trouble())
        assert "slotA" in attribution_table(report)
        assert "redo ops" in contract_attribution_table(report)
