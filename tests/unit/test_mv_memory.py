"""Block-STM's multi-version memory: read rules, estimates, finalisation."""

from __future__ import annotations

import pytest

from repro.concurrency.mv_memory import (
    ESTIMATE,
    EstimateDependency,
    MVMemory,
    MVReadAdapter,
)
from repro.primitives import make_address
from repro.state.keys import storage_key

KEY = storage_key(make_address(1), 1)
KEY2 = storage_key(make_address(1), 2)
_MISS = object()


class TestReads:
    def test_read_with_no_writes_falls_to_storage(self):
        mv = MVMemory()
        found, value, version = mv.read(KEY, reader_index=5)
        assert not found
        assert version == ("storage",)

    def test_reader_sees_highest_lower_writer(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 10})
        mv.record_writes(3, 0, {KEY: 30})
        found, value, version = mv.read(KEY, reader_index=5)
        assert found and value == 30
        assert version == ("tx", 3, 0)

    def test_reader_does_not_see_higher_writers(self):
        mv = MVMemory()
        mv.record_writes(7, 0, {KEY: 70})
        found, _, version = mv.read(KEY, reader_index=5)
        assert not found
        assert version == ("storage",)

    def test_reader_does_not_see_own_writes(self):
        mv = MVMemory()
        mv.record_writes(5, 0, {KEY: 50})
        found, _, _ = mv.read(KEY, reader_index=5)
        assert not found

    def test_estimate_raises_dependency(self):
        mv = MVMemory()
        mv.record_writes(2, 0, {KEY: 20})
        mv.convert_to_estimates(2)
        with pytest.raises(EstimateDependency) as exc:
            mv.read(KEY, reader_index=5)
        assert exc.value.blocking_tx == 2


class TestWriteLifecycle:
    def test_new_location_flag(self):
        mv = MVMemory()
        assert mv.record_writes(1, 0, {KEY: 1}) is True
        assert mv.record_writes(1, 1, {KEY: 2}) is False  # same footprint
        assert mv.record_writes(1, 2, {KEY: 2, KEY2: 3}) is True

    def test_shrinking_write_set_removes_stale_entries(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 1, KEY2: 2})
        mv.record_writes(1, 1, {KEY: 1})
        found, _, _ = mv.read(KEY2, reader_index=5)
        assert not found

    def test_incarnation_recorded(self):
        mv = MVMemory()
        mv.record_writes(1, 3, {KEY: 9})
        _, _, version = mv.read(KEY, reader_index=2)
        assert version == ("tx", 1, 3)

    def test_reexecution_clears_estimate(self):
        mv = MVMemory()
        mv.record_writes(2, 0, {KEY: 20})
        mv.convert_to_estimates(2)
        mv.record_writes(2, 1, {KEY: 21})
        found, value, _ = mv.read(KEY, reader_index=5)
        assert found and value == 21


class TestCurrentVersion:
    def test_storage_version(self):
        assert MVMemory().current_version(KEY, 3) == ("storage",)

    def test_estimate_version_differs_from_value_version(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 1})
        before = mv.current_version(KEY, 5)
        mv.convert_to_estimates(1)
        after = mv.current_version(KEY, 5)
        assert before != after
        assert after == ("estimate", 1)


class TestFinalWrites:
    def test_highest_writer_wins(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 10})
        mv.record_writes(4, 0, {KEY: 40})
        mv.record_writes(2, 0, {KEY2: 22})
        final = mv.final_writes(5)
        assert final == {KEY: 40, KEY2: 22}

    def test_finalising_estimates_is_a_bug(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 1})
        mv.convert_to_estimates(1)
        with pytest.raises(AssertionError):
            mv.final_writes(2)


class TestAdapter:
    def test_records_versions(self):
        mv = MVMemory()
        mv.record_writes(1, 0, {KEY: 10})
        adapter = MVReadAdapter(mv, tx_index=3, miss_sentinel=_MISS)
        assert adapter.get(KEY, _MISS) == 10
        assert adapter.get(KEY2, _MISS) is _MISS
        assert adapter.read_versions == {
            KEY: ("tx", 1, 0),
            KEY2: ("storage",),
        }

    def test_first_version_sticks(self):
        mv = MVMemory()
        adapter = MVReadAdapter(mv, tx_index=3, miss_sentinel=_MISS)
        adapter.get(KEY, _MISS)
        mv.record_writes(1, 0, {KEY: 10})
        adapter.get(KEY, _MISS)
        assert adapter.read_versions[KEY] == ("storage",)
