"""Scheduler-level behaviour of the block executors on crafted mini-blocks."""

from __future__ import annotations

import pytest

from repro.concurrency import (
    BlockSTMExecutor,
    OCCExecutor,
    SerialExecutor,
    TwoPhaseExecutor,
)
from repro.contracts import ERC20, allowance_slot, balance_slot, encode_call
from repro.core.executor import ParallelEVMExecutor
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import make_address
from repro.state.world import WorldState
from repro.workloads.block import Block

TOKEN = make_address(1)
OWNER = make_address(50)
USERS = [make_address(100 + i) for i in range(6)]
ETHER = 10**18
ENV = BlockEnv(coinbase=make_address(0xC0FFEE))


def token_world(owner_balance: int = 1_000) -> WorldState:
    world = WorldState()
    world.set_code(TOKEN, ERC20)
    world.set_storage(TOKEN, balance_slot(OWNER), owner_balance)
    for i, user in enumerate(USERS):
        world.set_balance(user, 10 * ETHER)
        world.set_storage(TOKEN, balance_slot(user), 1_000)
        world.set_storage(TOKEN, allowance_slot(OWNER, user), 10**9)
    return world


def drain_tx(spender_index: int, amount: int) -> Transaction:
    """transferFrom(OWNER -> spender, amount) — conflicts on OWNER's balance."""
    spender = USERS[spender_index]
    return Transaction(
        sender=spender,
        to=TOKEN,
        data=encode_call(
            "transferFrom(address,address,uint256)", OWNER, spender, amount
        ),
        gas_limit=300_000,
    )


def disjoint_tx(index: int) -> Transaction:
    """Transfers over pairwise-disjoint (sender, recipient) account pairs."""
    sender = USERS[2 * index]
    recipient = USERS[2 * index + 1]
    return Transaction(
        sender=sender,
        to=TOKEN,
        data=encode_call("transfer(address,uint256)", recipient, 1),
        gas_limit=300_000,
    )


def run(executor, world, txs):
    block = Block(number=1, txs=txs, env=ENV)
    return executor.execute_block(world, block.txs, block.env)


class TestSerialExecutor:
    def test_single_thread_reported(self):
        result = run(SerialExecutor(), token_world(), [disjoint_tx(0)])
        assert result.threads == 1

    def test_fee_settled_to_coinbase(self):
        from repro.state.keys import balance_key

        result = run(SerialExecutor(), token_world(), [disjoint_tx(0)])
        fee = result.tx_results[0].gas_used * 1
        assert result.writes[balance_key(ENV.coinbase)] == fee


class TestOCCInternals:
    def test_conflict_free_block_never_aborts(self):
        result = run(
            OCCExecutor(threads=4), token_world(), [disjoint_tx(i) for i in range(3)]
        )
        assert result.stats["aborts"] == 0
        assert result.stats["executions"] == 3

    def test_conflicting_pair_aborts_the_later_tx(self):
        result = run(
            OCCExecutor(threads=4),
            token_world(),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        # Both speculate against the pre-block state; tx1 must re-execute.
        assert result.stats["aborts"] == 1
        assert result.stats["executions"] == 3

    def test_single_thread_occ_sees_no_conflicts(self):
        # With one worker, execution order degenerates to serial: each tx
        # speculates against a fully committed prefix.
        result = run(
            OCCExecutor(threads=1),
            token_world(),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        assert result.stats["aborts"] == 0


class TestParallelEVMInternals:
    def test_conflicting_pair_resolved_by_redo(self):
        result = run(
            ParallelEVMExecutor(threads=4),
            token_world(),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        stats = result.stats
        assert stats["conflicting_txs"] == 1
        assert stats["redo_successes"] == 1
        assert stats["full_aborts"] == 0
        assert stats["executions"] == 2  # nobody re-executed fully

    def test_guard_violation_falls_back_to_reexecution(self):
        # OWNER has 15 tokens; both txs take 10: the second's balance guard
        # fails during redo (the §3.2 abort case) and must re-execute.
        result = run(
            ParallelEVMExecutor(threads=4),
            token_world(owner_balance=15),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        stats = result.stats
        assert stats["redo_failures"] == 1
        assert stats["full_aborts"] == 1
        assert stats["executions"] == 3
        # The fallback re-execution reverted (insufficient balance), exactly
        # as serial execution would have.
        serial = run(
            SerialExecutor(),
            token_world(owner_balance=15),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        assert [r.success for r in result.tx_results] == [
            r.success for r in serial.tx_results
        ] == [True, False]
        assert result.writes == serial.writes

    def test_log_statistics_collected(self):
        result = run(
            ParallelEVMExecutor(threads=4), token_world(), [disjoint_tx(0)]
        )
        assert result.stats["log_entries_total"] > 0
        assert result.stats["instructions_total"] > 0

    def test_preexecute_skips_read_phase_costs(self):
        txs = [disjoint_tx(i) for i in range(3)]
        normal = run(ParallelEVMExecutor(threads=4), token_world(), txs)
        pre = run(
            ParallelEVMExecutor(threads=4, preexecute=True), token_world(), txs
        )
        assert pre.writes == normal.writes
        assert pre.makespan_us < normal.makespan_us


class TestBlockSTMInternals:
    def test_conflict_free_block_executes_once_each(self):
        result = run(
            BlockSTMExecutor(threads=4),
            token_world(),
            [disjoint_tx(i) for i in range(3)],
        )
        assert result.stats["aborts"] == 0
        assert result.stats["executions"] == 3

    def test_conflicting_pair_triggers_abort_or_suspension(self):
        result = run(
            BlockSTMExecutor(threads=4),
            token_world(),
            [drain_tx(0, 10), drain_tx(1, 10)],
        )
        stats = result.stats
        assert stats["aborts"] + stats["estimate_suspensions"] >= 1
        assert stats["executions"] >= 3


class TestTwoPhaseInternals:
    def test_survivor_accounting(self):
        result = run(
            TwoPhaseExecutor(threads=4),
            token_world(),
            [drain_tx(0, 10), drain_tx(1, 10), disjoint_tx(2)],
        )
        assert result.stats["survivors"] >= 1
        assert result.stats["discarded"] >= 1
        assert result.stats["survivors"] + result.stats["discarded"] == 3


class TestEmptyAndTinyBlocks:
    @pytest.mark.parametrize(
        "executor_cls",
        [SerialExecutor, OCCExecutor, BlockSTMExecutor, TwoPhaseExecutor,
         ParallelEVMExecutor],
    )
    def test_empty_block(self, executor_cls):
        result = run(executor_cls(threads=4), token_world(), [])
        assert result.tx_results == []
        assert result.gas_used == 0

    @pytest.mark.parametrize(
        "executor_cls",
        [SerialExecutor, OCCExecutor, BlockSTMExecutor, TwoPhaseExecutor,
         ParallelEVMExecutor],
    )
    def test_single_tx_block(self, executor_cls):
        serial = run(SerialExecutor(), token_world(), [disjoint_tx(0)])
        result = run(executor_cls(threads=4), token_world(), [disjoint_tx(0)])
        assert result.writes == serial.writes
