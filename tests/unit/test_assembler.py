"""The EVM assembler: mnemonics, pushes, labels, errors, disassembly."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError
from repro.evm.assembler import assemble, disassemble
from repro.evm.opcodes import Op


class TestBasics:
    def test_single_opcode(self):
        assert assemble("STOP") == b"\x00"

    def test_sequence(self):
        assert assemble("ADD MUL STOP") == bytes([Op.ADD, Op.MUL, Op.STOP])

    def test_multiline_and_comments(self):
        source = """
        ; a comment-only line
        ADD   ; trailing comment
        STOP
        """
        assert assemble(source) == bytes([Op.ADD, Op.STOP])

    def test_case_insensitive_mnemonics(self):
        assert assemble("add") == bytes([Op.ADD])

    def test_keccak256_alias(self):
        assert assemble("KECCAK256") == bytes([Op.SHA3])

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("FLY")


class TestPush:
    def test_explicit_width(self):
        assert assemble("PUSH1 0x05") == bytes([0x60, 5])
        assert assemble("PUSH2 0x0102") == bytes([0x61, 1, 2])

    def test_auto_width(self):
        assert assemble("PUSH 5") == bytes([0x60, 5])
        assert assemble("PUSH 256") == bytes([0x61, 1, 0])
        assert assemble("PUSH 0") == bytes([0x60, 0])

    def test_auto_width_32_bytes(self):
        code = assemble(f"PUSH {2**255}")
        assert code[0] == 0x7F  # PUSH32
        assert len(code) == 33

    def test_decimal_and_hex(self):
        assert assemble("PUSH1 10") == assemble("PUSH1 0x0a")

    def test_operand_too_wide(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH1 256")

    def test_missing_operand(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH1")
        with pytest.raises(AssemblerError):
            assemble("PUSH")

    def test_bad_literal(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH1 zebra")

    def test_push0(self):
        assert assemble("PUSH0") == bytes([Op.PUSH0])


class TestLabels:
    def test_label_reference_is_push2(self):
        code = assemble(
            """
            PUSH @target JUMP
            target:
            JUMPDEST STOP
            """
        )
        # PUSH2 0x0004 JUMP JUMPDEST STOP
        assert code == bytes([0x61, 0, 4, Op.JUMP, Op.JUMPDEST, Op.STOP])

    def test_forward_and_backward_references(self):
        code = assemble(
            """
            start:
            JUMPDEST
            PUSH @end JUMPI
            PUSH @start JUMP
            end:
            JUMPDEST STOP
            """
        )
        assert code[-2] == Op.JUMPDEST

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH @nowhere JUMP")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: STOP a: STOP")

    def test_empty_label(self):
        with pytest.raises(AssemblerError):
            assemble(": STOP")

    def test_explicit_push2_label(self):
        code = assemble("PUSH2 @t JUMP t: JUMPDEST")
        assert code[:3] == bytes([0x61, 0, 4])

    def test_label_with_wrong_push_width(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH1 @t t: JUMPDEST")


class TestDupSwap:
    def test_dup_range(self):
        assert assemble("DUP1") == b"\x80"
        assert assemble("DUP16") == b"\x8f"

    def test_swap_range(self):
        assert assemble("SWAP1") == b"\x90"
        assert assemble("SWAP16") == b"\x9f"


class TestDisassemble:
    def test_roundtrip_mnemonics(self):
        source = "PUSH1 0x2a PUSH1 0x01 ADD STOP"
        rows = disassemble(assemble(source))
        assert [r[1] for r in rows] == ["PUSH1", "PUSH1", "ADD", "STOP"]
        assert rows[0][2] == 0x2A

    def test_pc_accounts_for_immediates(self):
        rows = disassemble(assemble("PUSH2 0x1234 STOP"))
        assert rows[0][0] == 0
        assert rows[1][0] == 3
