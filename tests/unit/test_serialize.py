"""SSA-log wire format: round-trips, rebuilt indexes, redo equivalence."""

from __future__ import annotations

import pytest

from repro.contracts import allowance_slot, balance_slot, encode_call
from repro.core.redo import redo
from repro.core.serialize import (
    SerializationError,
    decode_log,
    encode_log,
)
from repro.core.ssa_log import PseudoOp
from repro.core.tracer import SSATracer
from repro.state.keys import storage_key

from ..conftest import transfer_from_tx, transfer_tx


def traced_log(world, run_tx, tx):
    tracer = SSATracer()
    result = run_tx(world, tx, tracer=tracer)
    assert result.success
    return tracer.log, result


class TestRoundTrip:
    def test_entry_fields_survive(self, world, run_tx, token, alice, bob):
        log, _ = traced_log(world, run_tx, transfer_tx(alice, token, bob, 300))
        rebuilt = decode_log(encode_log(log))
        assert len(rebuilt) == len(log)
        for original, copy in zip(log.entries, rebuilt.entries):
            assert copy.lsn == original.lsn
            assert copy.opcode == original.opcode
            assert copy.operands == original.operands
            assert copy.result == original.result
            assert copy.def_stack == original.def_stack
            assert copy.def_storage == original.def_storage
            assert copy.def_memory == original.def_memory
            assert copy.key == original.key
            assert copy.gas_cost == original.gas_cost
            assert copy.gas_dynamic == original.gas_dynamic

    def test_tracking_maps_rebuilt(self, world, run_tx, token, alice, bob):
        log, _ = traced_log(world, run_tx, transfer_tx(alice, token, bob, 300))
        rebuilt = decode_log(encode_log(log))
        assert rebuilt.direct_reads == log.direct_reads
        assert rebuilt.latest_writes == log.latest_writes
        assert rebuilt.writes_by_key == log.writes_by_key
        assert rebuilt.uses == log.uses
        assert rebuilt.redoable == log.redoable

    def test_non_redoable_flag_survives(self, world, run_tx, token, alice, bob):
        log, _ = traced_log(world, run_tx, transfer_tx(alice, token, bob, 1))
        log.redoable = False
        assert decode_log(encode_log(log)).redoable is False

    def test_meta_with_record_survives(self, amm_world, run_tx, alice):
        from repro.evm.message import Transaction

        world, pair, _, _ = amm_world
        tx = Transaction(
            sender=alice,
            to=pair,
            data=encode_call("swap(uint256,uint256,address)", 10**6, 1, alice),
            gas_limit=800_000,
        )
        log, _ = traced_log(world, run_tx, tx)
        rebuilt = decode_log(encode_log(log))
        originals = [e for e in log.entries if e.opcode == PseudoOp.LOGDATA]
        copies = [e for e in rebuilt.entries if e.opcode == PseudoOp.LOGDATA]
        assert len(copies) == len(originals) > 0
        for original, copy in zip(originals, copies):
            assert copy.meta["record"].topics == original.meta["record"].topics
            assert copy.meta["record"].data == original.meta["record"].data


class TestRedoOnDeserializedLog:
    def test_redo_outcome_identical(self, world, run_tx, token, alice, bob, carol):
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx = transfer_from_tx(bob, token, alice, carol, 200)
        log, _ = traced_log(world, run_tx, tx)
        wire = encode_log(log)

        key = storage_key(token, balance_slot(alice))
        direct = redo(log, {key: 700})
        shipped = redo(decode_log(wire), {key: 700})
        assert shipped.success == direct.success is True
        assert shipped.updated_writes == direct.updated_writes
        assert shipped.reexecuted == direct.reexecuted

    def test_guard_violation_identical(self, world, run_tx, token, alice, bob, carol):
        world.set_storage(token, allowance_slot(alice, bob), 10**6)
        tx = transfer_from_tx(bob, token, alice, carol, 200)
        log, _ = traced_log(world, run_tx, tx)
        wire = encode_log(log)
        key = storage_key(token, balance_slot(alice))
        assert not redo(decode_log(wire), {key: 3}).success


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            decode_log(b"\x00garbage")

    def test_truncated_rejected(self, world, run_tx, token, alice, bob):
        log, _ = traced_log(world, run_tx, transfer_tx(alice, token, bob, 1))
        wire = encode_log(log)
        with pytest.raises(Exception):
            decode_log(wire[: len(wire) // 2])

    def test_wire_is_deterministic(self, world, run_tx, token, alice, bob):
        log, _ = traced_log(world, run_tx, transfer_tx(alice, token, bob, 1))
        assert encode_log(log) == encode_log(decode_log(encode_log(log)))
