"""Keccak-256 vectors and the Solidity storage-slot derivation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import (
    keccak256,
    keccak256_cached,
    storage_slot_for_mapping,
)

# Canonical Keccak-256 (pre-NIST padding) test vectors: the empty-string
# digest, the FIPS "abc" Keccak digest, and Ethereum's most famous
# selector/topic constants.
VECTORS = {
    b"": "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    b"abc": "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    b"Transfer(address,address,uint256)": (
        "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
    ),
}


class TestKeccakVectors:
    def test_known_digests(self):
        for message, digest in VECTORS.items():
            assert keccak256(message).hex() == digest

    def test_function_selector_derivation(self):
        # The most recognisable constants in all of Ethereum.
        assert keccak256(b"transfer(address,uint256)")[:4].hex() == "a9059cbb"
        assert keccak256(b"approve(address,uint256)")[:4].hex() == "095ea7b3"
        assert keccak256(b"balanceOf(address)")[:4].hex() == "70a08231"
        assert keccak256(b"transferFrom(address,address,uint256)")[:4].hex() == (
            "23b872dd"
        )

    def test_rate_boundary_minus_one(self):
        # 135 bytes: the pad is exactly two bytes (0x01 ... 0x80).
        assert len(keccak256(b"x" * 135)) == 32

    def test_rate_boundary_exact(self):
        # 136 bytes = one full rate block; the pad occupies a whole block.
        assert len(keccak256(b"\x00" * 136)) == 32
        assert keccak256(b"\x00" * 136) != keccak256(b"\x00" * 135)

    def test_rate_boundary_plus_one(self):
        assert len(keccak256(b"x" * 137)) == 32

    def test_multi_block_input(self):
        assert len(keccak256(b"y" * 1000)) == 32


class TestCachedKeccak:
    def test_matches_uncached(self):
        for size in (0, 1, 32, 64, 127, 128, 129, 500):
            data = bytes(range(256))[:size] if size <= 256 else b"z" * size
            assert keccak256_cached(data) == keccak256(data)

    def test_cache_hit_returns_same_digest(self):
        data = b"cache-me"
        assert keccak256_cached(data) == keccak256_cached(data)


class TestStorageSlots:
    def test_mapping_slot_is_keccak_of_key_and_slot(self):
        key = (7).to_bytes(20, "big")
        expected = int.from_bytes(
            keccak256(key.rjust(32, b"\x00") + (1).to_bytes(32, "big")), "big"
        )
        assert storage_slot_for_mapping(key, 1) == expected

    def test_distinct_keys_distinct_slots(self):
        a = storage_slot_for_mapping(b"\x01" * 20, 1)
        b = storage_slot_for_mapping(b"\x02" * 20, 1)
        assert a != b

    def test_distinct_base_slots_distinct_slots(self):
        key = b"\x01" * 20
        assert storage_slot_for_mapping(key, 1) != storage_slot_for_mapping(key, 2)


@given(st.binary(max_size=600))
def test_digest_is_deterministic_and_32_bytes(data):
    d1, d2 = keccak256(data), keccak256(data)
    assert d1 == d2
    assert len(d1) == 32


@given(st.binary(max_size=200))
def test_cached_always_matches_plain(data):
    assert keccak256_cached(data) == keccak256(data)


@given(st.binary(min_size=1, max_size=100))
def test_single_bit_flip_changes_digest(data):
    flipped = bytes([data[0] ^ 0x01]) + data[1:]
    assert keccak256(data) != keccak256(flipped)
