"""The observability layer: metrics registry, span traces, block reports."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    BlockObserver,
    MetricsRegistry,
    TraceRecorder,
    commit_point_stall_us,
    conflict_heatmap_table,
    phase_breakdown_table,
    redo_slice_table,
    render_block_report,
    utilization_table,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.trace import Span
from repro.sim.machine import Task


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(3.0)
        g.add(1.5)
        assert g.value == 4.5


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram([1, 2, 4])
        for value in (0.5, 1, 1.5, 4, 100):
            h.observe(value)
        # buckets are [0,1), [1,2), [2,4), [4,inf): a value equal to an
        # edge lands in the bucket whose lower bound it is.
        assert h.counts == [1, 2, 0, 2]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram([2, 1])
        with pytest.raises(ValueError):
            Histogram([1, 1, 2])

    def test_as_value(self):
        h = Histogram([10])
        h.observe(3)
        # The export carries an explicit "+inf" edge so buckets and counts
        # pair one-to-one and the overflow bucket is never silently dropped.
        assert h.as_value() == {
            "buckets": [10, "+inf"],
            "bounds": [["-inf", 10], [10, "+inf"]],
            "counts": [1, 0],
            "count": 1,
            "sum": 3.0,
        }

    def test_overflow_bucket_exported(self):
        h = Histogram([10, 1000])
        h.observe(5000)
        value = h.as_value()
        assert value["buckets"] == [10, 1000, "+inf"]
        assert value["counts"] == [0, 0, 1]


class TestMetricsRegistry:
    def test_same_name_same_labels_is_same_metric(self):
        m = MetricsRegistry()
        m.counter("hits", shard="a").inc()
        m.counter("hits", shard="a").inc()
        m.counter("hits", shard="b").inc()
        assert m.value("hits", shard="a") == 2
        assert m.value("hits", shard="b") == 1
        assert m.sum_by_name("hits") == 3

    def test_label_order_is_irrelevant(self):
        m = MetricsRegistry()
        m.counter("x", a="1", b="2").inc()
        assert m.value("x", b="2", a="1") == 1

    def test_kind_collision_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_value_of_missing_series_is_none(self):
        assert MetricsRegistry().value("nope") is None

    def test_as_dict_series_naming_and_order(self):
        m = MetricsRegistry()
        m.counter("b_series").inc(2)
        m.counter("a_series", phase="redo").inc()
        m.gauge("a_series", phase="execute").set(1.5)
        d = m.as_dict()
        assert list(d) == [
            "a_series{phase=execute}",
            "a_series{phase=redo}",
            "b_series",
        ]
        assert d["b_series"] == 2

    def test_json_roundtrip_deterministic(self):
        def build():
            m = MetricsRegistry()
            m.counter("c", k="v").inc(3)
            m.histogram("h", [1, 2]).observe(1.5)
            m.gauge("g").set(7)
            return m.to_json()

        assert build() == build()
        assert json.loads(build())["c{k=v}"] == 3

    def test_write_json(self, tmp_path):
        m = MetricsRegistry()
        m.counter("c").inc()
        path = tmp_path / "metrics.json"
        m.write_json(str(path))
        assert json.loads(path.read_text()) == {"c": 1}


def _record(trace, worker, kind, start, end, tx=None):
    trace.on_span(worker, Task(kind=kind, duration_us=end - start, tx_index=tx),
                  start, end)


class TestTraceRecorder:
    def test_span_accumulation(self):
        t = TraceRecorder()
        _record(t, 0, "execute", 0.0, 5.0, tx=0)
        _record(t, 1, "execute", 0.0, 3.0, tx=1)
        _record(t, 0, "validate", 5.0, 6.0, tx=0)
        assert len(t) == 3
        assert t.busy_us() == pytest.approx(9.0)
        assert t.worker_busy_us() == {0: pytest.approx(6.0), 1: pytest.approx(3.0)}
        assert t.kind_totals_us() == {
            "execute": pytest.approx(8.0),
            "validate": pytest.approx(1.0),
        }

    def test_duck_typed_tasks(self):
        """Anything with .kind (and optionally .tx_index) is accepted."""

        class Stub:
            kind = "run"

        t = TraceRecorder()
        t.on_span(2, Stub(), 1.0, 4.0)
        assert t.spans == [Span(2, "run", None, 1.0, 4.0)]

    def test_chrome_trace_schema(self):
        t = TraceRecorder()
        _record(t, 0, "execute", 0.0, 5.0, tx=3)
        _record(t, 1, "redo", 2.0, 4.0)
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
        assert len(complete) == len(t.spans)
        first = complete[0]
        assert first["name"] == "execute"
        assert first["ts"] == 0.0 and first["dur"] == 5.0
        assert first["tid"] == 0 and first["args"] == {"tx": 3}
        assert complete[1]["args"] == {}

    def test_chrome_json_byte_identical(self):
        def build():
            t = TraceRecorder()
            _record(t, 0, "execute", 0.0, 5.0, tx=0)
            _record(t, 1, "validate", 5.0, 6.0, tx=0)
            return t.to_chrome_json()

        assert build() == build()

    def test_write_chrome_trace(self, tmp_path):
        t = TraceRecorder()
        _record(t, 0, "execute", 0.0, 1.0)
        path = tmp_path / "trace.json"
        t.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestBlockObserver:
    def test_mirrors_spans_into_metrics(self):
        obs = BlockObserver()
        obs.on_span(0, Task(kind="execute", duration_us=5.0, tx_index=0), 0.0, 5.0)
        obs.on_span(1, Task(kind="execute", duration_us=3.0, tx_index=1), 0.0, 3.0)
        obs.on_span(0, Task(kind="redo", duration_us=1.0, tx_index=0), 5.0, 6.0)
        assert len(obs.trace.spans) == 3
        assert obs.metrics.value("phase_time_us", phase="execute") == pytest.approx(8.0)
        assert obs.metrics.value("tasks_total", phase="execute") == 2
        assert obs.metrics.value("tasks_total", phase="redo") == 1
        assert obs.metrics.value("span_duration_us")["count"] == 3
        assert obs.metrics.sum_by_name("phase_time_us") == pytest.approx(
            obs.trace.busy_us()
        )


class TestReports:
    def _observer(self):
        obs = BlockObserver()
        obs.on_span(0, Task(kind="execute", duration_us=6.0, tx_index=0), 0.0, 6.0)
        obs.on_span(1, Task(kind="execute", duration_us=4.0, tx_index=1), 0.0, 4.0)
        obs.on_span(1, Task(kind="validate", duration_us=2.0, tx_index=0), 6.0, 8.0)
        obs.on_span(0, Task(kind="redo", duration_us=1.0, tx_index=0), 9.0, 10.0)
        return obs

    def test_phase_breakdown(self):
        table = phase_breakdown_table(self._observer().trace, makespan_us=10.0)
        assert "execute" in table and "validate" in table and "redo" in table
        assert "(all)" in table

    def test_utilization(self):
        table = utilization_table(self._observer().trace, threads=2, makespan_us=10.0)
        assert "worker 0" in table and "worker 1" in table
        assert "70.0%" in table  # worker 0: (6+1)/10

    def test_commit_point_stall(self):
        # validate covers [6,8], redo [9,10] -> 10 - 3 covered = 7 stalled.
        stall = commit_point_stall_us(self._observer().trace, makespan_us=10.0)
        assert stall == pytest.approx(7.0)

    def test_commit_point_stall_merges_overlaps(self):
        t = TraceRecorder()
        _record(t, 0, "validate", 0.0, 4.0)
        _record(t, 1, "commit", 2.0, 5.0)  # overlap must not double-count
        assert commit_point_stall_us(t, makespan_us=6.0) == pytest.approx(1.0)

    def test_conflict_heatmap(self):
        m = MetricsRegistry()
        assert conflict_heatmap_table(m) is None
        m.counter("conflict_keys", key="('b', 0x1)").inc(3)
        m.counter("conflict_keys", key="('b', 0x2)").inc(1)
        table = conflict_heatmap_table(m)
        assert "('b', 0x1)" in table and "75.0%" in table

    def test_redo_slice_table(self):
        m = MetricsRegistry()
        assert redo_slice_table(m) is None
        m.histogram("redo_slice_entries", [1, 2, 4]).observe(3)
        table = redo_slice_table(m)
        assert "2-4" in table and "(mean entries)" in table

    def test_full_report_renders(self):
        obs = self._observer()
        obs.metrics.counter("conflict_keys", key="k").inc()
        obs.metrics.histogram("redo_slice_entries", [1, 2]).observe(1)
        report = render_block_report(obs, makespan_us=10.0, threads=2, title="t")
        assert "Phase breakdown" in report
        assert "Worker utilization" in report
        assert "commit-point stall" in report
        assert "Conflict heatmap" in report
        assert "Redo slice sizes" in report
