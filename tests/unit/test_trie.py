"""Merkle Patricia trie: Ethereum vectors, structure, model-based property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrieError
from repro.trie import EMPTY_ROOT, MerklePatriciaTrie
from repro.trie.mpt import trie_root
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
    nibbles_to_bytes,
)


class TestNibbles:
    def test_bytes_to_nibbles(self):
        assert bytes_to_nibbles(b"\x12\xab") == (1, 2, 0xA, 0xB)

    def test_nibbles_roundtrip(self):
        data = b"\x00\xff\x5a"
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data

    def test_odd_nibbles_rejected(self):
        with pytest.raises(TrieError):
            nibbles_to_bytes((1, 2, 3))

    def test_common_prefix(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2
        assert common_prefix_length((), (1,)) == 0
        assert common_prefix_length((5,), (5,)) == 1

    @pytest.mark.parametrize("is_leaf", [True, False])
    @pytest.mark.parametrize(
        "path", [(), (1,), (1, 2), (1, 2, 3), (0xF,) * 7]
    )
    def test_hp_roundtrip(self, path, is_leaf):
        assert hp_decode(hp_encode(path, is_leaf)) == (path, is_leaf)

    def test_hp_known_encodings(self):
        # Yellow paper appendix C examples.
        assert hp_encode((1, 2, 3, 4, 5), is_leaf=False) == b"\x11\x23\x45"
        assert hp_encode((0, 1, 2, 3, 4, 5), is_leaf=False) == b"\x00\x01\x23\x45"
        assert hp_encode((0xF, 1, 0xC, 0xB, 8), is_leaf=True) == b"\x3f\x1c\xb8"


class TestTrieVectors:
    def test_empty_root(self):
        assert MerklePatriciaTrie().root_hash() == EMPTY_ROOT

    def test_ethereum_foundation_vector(self):
        # From the ethereum/tests trietest suite ("branchingTests").
        trie = MerklePatriciaTrie()
        for k, v in [
            (b"do", b"verb"),
            (b"dog", b"puppy"),
            (b"doge", b"coin"),
            (b"horse", b"stallion"),
        ]:
            trie.put(k, v)
        assert trie.root_hash().hex() == (
            "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
        )

    def test_single_entry_root_differs_from_empty(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v")
        assert trie.root_hash() != EMPTY_ROOT


class TestTrieOperations:
    def test_get_missing_returns_none(self):
        trie = MerklePatriciaTrie()
        assert trie.get(b"nope") is None

    def test_put_get(self):
        trie = MerklePatriciaTrie()
        trie.put(b"alpha", b"1")
        trie.put(b"beta", b"2")
        assert trie.get(b"alpha") == b"1"
        assert trie.get(b"beta") == b"2"

    def test_overwrite(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v1")
        trie.put(b"k", b"v2")
        assert trie.get(b"k") == b"v2"

    def test_empty_value_deletes(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v")
        trie.put(b"k", b"")
        assert trie.get(b"k") is None
        assert trie.root_hash() == EMPTY_ROOT

    def test_key_is_prefix_of_other(self):
        trie = MerklePatriciaTrie()
        trie.put(b"dog", b"1")
        trie.put(b"doge", b"2")
        assert trie.get(b"dog") == b"1"
        assert trie.get(b"doge") == b"2"
        trie.delete(b"dog")
        assert trie.get(b"dog") is None
        assert trie.get(b"doge") == b"2"

    def test_delete_missing_is_noop(self):
        trie = MerklePatriciaTrie()
        trie.put(b"a", b"1")
        root = trie.root_hash()
        trie.delete(b"zzz")
        assert trie.root_hash() == root

    def test_delete_everything_restores_empty_root(self):
        trie = MerklePatriciaTrie()
        keys = [bytes([i, j]) for i in range(6) for j in range(6)]
        for k in keys:
            trie.put(k, k + b"!")
        for k in keys:
            trie.delete(k)
        assert trie.root_hash() == EMPTY_ROOT

    def test_items_sorted_and_complete(self):
        trie = MerklePatriciaTrie()
        pairs = {bytes([i]): bytes([i, i]) for i in range(20)}
        for k, v in pairs.items():
            trie.put(k, v)
        assert dict(trie.items()) == pairs
        assert len(trie) == 20

    def test_contains(self):
        trie = MerklePatriciaTrie()
        trie.put(b"yes", b"1")
        assert b"yes" in trie
        assert b"no" not in trie

    def test_insertion_order_independence(self):
        pairs = {bytes([i, j]): bytes([j + 1]) for i in range(8) for j in range(8)}
        root1 = trie_root(pairs)
        trie2 = MerklePatriciaTrie()
        for k in sorted(pairs, reverse=True):
            trie2.put(k, pairs[k])
        assert trie2.root_hash() == root1

    def test_root_reflects_content_not_history(self):
        # Insert extra keys and delete them: root must match fresh build.
        trie = MerklePatriciaTrie()
        trie.put(b"keep", b"1")
        trie.put(b"temp1", b"x")
        trie.put(b"temp22", b"y")
        trie.delete(b"temp1")
        trie.delete(b"temp22")
        assert trie.root_hash() == trie_root({b"keep": b"1"})


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=8),
        st.binary(min_size=1, max_size=16),
        max_size=30,
    ),
    st.randoms(use_true_random=False),
)
def test_trie_behaves_like_a_dict(pairs, rng):
    """Model-based: arbitrary put/delete sequences match a plain dict."""
    trie = MerklePatriciaTrie()
    model: dict[bytes, bytes] = {}
    operations = list(pairs.items())
    rng.shuffle(operations)
    for key, value in operations:
        trie.put(key, value)
        model[key] = value
    # Delete a random half.
    for key in rng.sample(list(model), k=len(model) // 2):
        trie.delete(key)
        del model[key]
    assert dict(trie.items()) == model
    assert trie.root_hash() == trie_root(model)


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=6),
        st.binary(min_size=1, max_size=8),
        min_size=1,
        max_size=20,
    )
)
def test_root_is_content_addressed(pairs):
    """Same content, any insertion order -> same root; differing content ->
    different root (collision-freedom at test scale)."""
    root = trie_root(pairs)
    reordered = MerklePatriciaTrie()
    for key in sorted(pairs):
        reordered.put(key, pairs[key])
    assert reordered.root_hash() == root

    key = next(iter(pairs))
    mutated = dict(pairs)
    mutated[key] = pairs[key] + b"\x01"
    assert trie_root(mutated) != root
