"""The workload contracts: ERC20, AMM pair, crowdfund — full behaviour."""

from __future__ import annotations

from repro.contracts import (
    allowance_slot,
    balance_slot,
    encode_call,
)
from repro.contracts.abi import event_topic
from repro.contracts.amm import RESERVE0_SLOT, RESERVE1_SLOT
from repro.contracts.crowdfund import TOTAL_RAISED_SLOT, contribution_slot
from repro.evm.message import Transaction
from repro.primitives import address_to_word, make_address
from repro.state.keys import storage_key

from ..conftest import transfer_from_tx, transfer_tx


def call(sender, to, sig, *args, gas=400_000):
    return Transaction(
        sender=sender, to=to, data=encode_call(sig, *args), gas_limit=gas
    )


class TestERC20Transfer:
    def test_moves_balance(self, world, run_tx, token, alice, bob):
        result = run_tx(world, transfer_tx(alice, token, bob, 300))
        assert result.success
        assert result.write_set[storage_key(token, balance_slot(alice))] == 700
        assert result.write_set[storage_key(token, balance_slot(bob))] == 1300

    def test_returns_true(self, world, run_tx, token, alice, bob):
        result = run_tx(world, transfer_tx(alice, token, bob, 1))
        assert int.from_bytes(result.return_data, "big") == 1

    def test_emits_transfer_event(self, world, run_tx, token, alice, bob):
        result = run_tx(world, transfer_tx(alice, token, bob, 300))
        (log,) = result.logs
        assert log.address == token
        assert log.topics[0] == event_topic("Transfer(address,address,uint256)")
        assert log.topics[1] == address_to_word(alice)
        assert log.topics[2] == address_to_word(bob)
        assert int.from_bytes(log.data, "big") == 300

    def test_insufficient_balance_reverts(self, world, run_tx, token, alice, bob):
        result = run_tx(world, transfer_tx(alice, token, bob, 1001))
        assert not result.success
        assert storage_key(token, balance_slot(bob)) not in result.write_set

    def test_exact_balance_succeeds(self, world, run_tx, token, alice, bob):
        result = run_tx(world, transfer_tx(alice, token, bob, 1000))
        assert result.success
        assert result.write_set[storage_key(token, balance_slot(alice))] == 0

    def test_self_transfer_conserves_balance(self, world, run_tx, token, alice):
        result = run_tx(world, transfer_tx(alice, token, alice, 100))
        assert result.success
        # from-debit then to-credit on the same slot nets to the original.
        assert result.write_set[storage_key(token, balance_slot(alice))] == 1000


class TestERC20Approvals:
    def test_approve_sets_allowance(self, world, run_tx, token, alice, bob):
        result = run_tx(world, call(alice, token, "approve(address,uint256)", bob, 55))
        assert result.success
        assert result.write_set[storage_key(token, allowance_slot(alice, bob))] == 55

    def test_approve_emits_approval_event(self, world, run_tx, token, alice, bob):
        result = run_tx(world, call(alice, token, "approve(address,uint256)", bob, 55))
        (log,) = result.logs
        assert log.topics[0] == event_topic("Approval(address,address,uint256)")

    def test_allowance_view(self, world, run_tx, token, alice, bob):
        world.set_storage(token, allowance_slot(alice, bob), 77)
        result = run_tx(
            world, call(bob, token, "allowance(address,address)", alice, bob)
        )
        assert int.from_bytes(result.return_data, "big") == 77

    def test_transfer_from_spends_allowance(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 500)
        result = run_tx(world, transfer_from_tx(bob, token, alice, carol, 200))
        assert result.success
        assert result.write_set[storage_key(token, allowance_slot(alice, bob))] == 300
        assert result.write_set[storage_key(token, balance_slot(alice))] == 800
        assert result.write_set[storage_key(token, balance_slot(carol))] == 1200

    def test_transfer_from_without_allowance_reverts(
        self, world, run_tx, token, alice, bob, carol
    ):
        result = run_tx(world, transfer_from_tx(bob, token, alice, carol, 200))
        assert not result.success

    def test_transfer_from_insufficient_allowance_reverts(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 100)
        result = run_tx(world, transfer_from_tx(bob, token, alice, carol, 200))
        assert not result.success

    def test_transfer_from_insufficient_balance_reverts(
        self, world, run_tx, token, alice, bob, carol
    ):
        world.set_storage(token, allowance_slot(alice, bob), 10**9)
        result = run_tx(world, transfer_from_tx(bob, token, alice, carol, 5000))
        assert not result.success


class TestERC20Views:
    def test_balance_of(self, world, run_tx, token, alice, bob):
        result = run_tx(world, call(bob, token, "balanceOf(address)", alice))
        assert int.from_bytes(result.return_data, "big") == 1000

    def test_total_supply(self, world, run_tx, token, alice):
        result = run_tx(world, call(alice, token, "totalSupply()"))
        assert int.from_bytes(result.return_data, "big") == 3000

    def test_unknown_selector_reverts(self, world, run_tx, token, alice):
        tx = Transaction(
            sender=alice, to=token, data=b"\xde\xad\xbe\xef", gas_limit=100_000
        )
        result = run_tx(world, tx)
        assert not result.success


class TestAMM:
    def _swap(self, run_tx, world, pair, sender, amount, zero_for_one):
        tx = call(
            sender,
            pair,
            "swap(uint256,uint256,address)",
            amount,
            1 if zero_for_one else 0,
            sender,
            gas=800_000,
        )
        return run_tx(world, tx)

    def test_swap_constant_product_pricing(self, amm_world, run_tx, alice):
        world, pair, token0, token1 = amm_world
        amount_in = 10**6
        reserve = 10**12
        result = self._swap(run_tx, world, pair, alice, amount_in, True)
        assert result.success, result.error
        expected = (amount_in * 997 * reserve) // (reserve * 1000 + amount_in * 997)
        assert int.from_bytes(result.return_data, "big") == expected

    def test_swap_updates_reserves(self, amm_world, run_tx, alice):
        world, pair, token0, token1 = amm_world
        amount_in = 10**6
        result = self._swap(run_tx, world, pair, alice, amount_in, True)
        out = int.from_bytes(result.return_data, "big")
        assert result.write_set[storage_key(pair, RESERVE0_SLOT)] == 10**12 + amount_in
        assert result.write_set[storage_key(pair, RESERVE1_SLOT)] == 10**12 - out

    def test_swap_moves_token_balances(self, amm_world, run_tx, alice):
        world, pair, token0, token1 = amm_world
        result = self._swap(run_tx, world, pair, alice, 10**6, True)
        out = int.from_bytes(result.return_data, "big")
        assert (
            result.write_set[storage_key(token0, balance_slot(alice))]
            == 10**9 - 10**6
        )
        assert (
            result.write_set[storage_key(token1, balance_slot(alice))]
            == 10**9 + out
        )

    def test_swap_opposite_direction(self, amm_world, run_tx, alice):
        world, pair, token0, token1 = amm_world
        result = self._swap(run_tx, world, pair, alice, 10**6, False)
        assert result.success
        out = int.from_bytes(result.return_data, "big")
        assert result.write_set[storage_key(pair, RESERVE1_SLOT)] == 10**12 + 10**6
        assert result.write_set[storage_key(pair, RESERVE0_SLOT)] == 10**12 - out

    def test_swap_without_allowance_reverts(self, amm_world, run_tx, bob):
        world, pair, token0, token1 = amm_world
        result = self._swap(run_tx, world, pair, bob, 10**6, True)
        assert not result.success

    def test_swap_preserves_k_with_fee(self, amm_world, run_tx, alice):
        world, pair, _, _ = amm_world
        result = self._swap(run_tx, world, pair, alice, 10**6, True)
        r0 = result.write_set[storage_key(pair, RESERVE0_SLOT)]
        r1 = result.write_set[storage_key(pair, RESERVE1_SLOT)]
        # With the 0.3% fee, k must not decrease.
        assert r0 * r1 >= 10**24

    def test_get_reserves(self, amm_world, run_tx, alice):
        world, pair, _, _ = amm_world
        result = run_tx(world, call(alice, pair, "getReserves()"))
        assert result.success
        assert int.from_bytes(result.return_data[:32], "big") == 10**12
        assert int.from_bytes(result.return_data[32:], "big") == 10**12

    def test_swap_pays_two_transfer_events(self, amm_world, run_tx, alice):
        world, pair, _, _ = amm_world
        result = self._swap(run_tx, world, pair, alice, 10**6, True)
        transfer_topic = event_topic("Transfer(address,address,uint256)")
        assert sum(1 for log in result.logs if log.topics[0] == transfer_topic) == 2


class TestCrowdfund:
    def test_contribute_updates_both_slots(self, world, run_tx, alice):
        from repro.contracts import Crowdfund

        fund = make_address(0xF00D)
        world.set_code(fund, Crowdfund)
        result = run_tx(world, call(alice, fund, "contribute(uint256)", 250))
        assert result.success
        assert result.write_set[storage_key(fund, TOTAL_RAISED_SLOT)] == 250
        assert (
            result.write_set[storage_key(fund, contribution_slot(alice))] == 250
        )

    def test_contributions_accumulate(self, world, run_tx, alice, bob):
        from repro.contracts import Crowdfund

        fund = make_address(0xF00D)
        world.set_code(fund, Crowdfund)
        world.set_storage(fund, TOTAL_RAISED_SLOT, 100)
        world.set_storage(fund, contribution_slot(alice), 40)
        result = run_tx(world, call(alice, fund, "contribute(uint256)", 10))
        assert result.write_set[storage_key(fund, TOTAL_RAISED_SLOT)] == 110
        assert result.write_set[storage_key(fund, contribution_slot(alice))] == 50

    def test_total_raised_view(self, world, run_tx, alice):
        from repro.contracts import Crowdfund

        fund = make_address(0xF00D)
        world.set_code(fund, Crowdfund)
        world.set_storage(fund, TOTAL_RAISED_SLOT, 777)
        result = run_tx(world, call(alice, fund, "totalRaised()"))
        assert int.from_bytes(result.return_data, "big") == 777
