"""Critical-path extraction: blame chains, stalls, invariants."""

from __future__ import annotations

import pytest

from repro.obs import (
    DependencyEdge,
    Span,
    TraceRecorder,
    blamed_txs_table,
    critical_path,
    critical_path_table,
)
from repro.obs.critical_path import STALL


def span(worker, kind, tx, start, end):
    return Span(worker_id=worker, kind=kind, tx_index=tx, start_us=start, end_us=end)


class _Task:
    def __init__(self, kind, tx_index):
        self.kind = kind
        self.tx_index = tx_index


def record(spans):
    trace = TraceRecorder()
    for s in spans:
        trace.on_span(s.worker_id, _Task(s.kind, s.tx_index), s.start_us, s.end_us)
    return trace


class TestBlameChain:
    def test_serial_chain_covers_everything(self):
        spans = [
            span(0, "execute", 0, 0.0, 10.0),
            span(0, "commit", 0, 10.0, 12.0),
            span(0, "execute", 1, 12.0, 30.0),
            span(0, "commit", 1, 30.0, 31.0),
        ]
        report = critical_path(spans, 31.0)
        assert report.stall_us == 0.0
        assert report.path_work_us == pytest.approx(31.0)
        assert report.path_task_count == 4
        # Chronological, contiguous segments tiling [0, makespan].
        assert report.segments[0].start_us == 0.0
        for a, b in zip(report.segments, report.segments[1:]):
            assert a.end_us == pytest.approx(b.start_us)
        assert report.segments[-1].end_us == pytest.approx(31.0)

    def test_gap_becomes_stall_segment(self):
        spans = [
            span(0, "execute", 0, 0.0, 10.0),
            span(0, "commit", 0, 15.0, 20.0),  # 5us of nothing before it
        ]
        report = critical_path(spans, 20.0)
        stalls = [s for s in report.segments if s.phase == STALL]
        assert len(stalls) == 1
        assert stalls[0].start_us == pytest.approx(10.0)
        assert stalls[0].end_us == pytest.approx(15.0)
        assert report.stall_us == pytest.approx(5.0)
        assert report.path_work_us + report.stall_us == pytest.approx(20.0)

    def test_leading_stall_when_nothing_starts_at_zero(self):
        report = critical_path([span(0, "execute", 0, 4.0, 9.0)], 9.0)
        assert report.segments[0].phase == STALL
        assert report.segments[0].start_us == 0.0
        assert report.segments[0].end_us == pytest.approx(4.0)

    def test_same_tx_phase_chain_preferred(self):
        # tx 1's validate follows tx 1's execute, not the longer tx 0 span
        # that happens to end at the same instant.
        spans = [
            span(0, "execute", 0, 0.0, 10.0),
            span(1, "execute", 1, 2.0, 10.0),
            span(2, "validate", 1, 10.0, 14.0),
        ]
        report = critical_path(spans, 14.0)
        chain_txs = [s.tx_index for s in report.segments if s.phase != STALL]
        assert chain_txs[-2:] == [1, 1]

    def test_dependency_edge_preferred_over_worker(self):
        spans = [
            span(0, "execute", 0, 0.0, 10.0),
            span(1, "execute", 1, 0.0, 10.0),
            span(1, "execute", 2, 10.0, 18.0),
        ]
        # tx 2 conflicts with tx 0's writes: blame tx 0, not the same-worker
        # tx 1.
        edges = [DependencyEdge(kind="conflict", src_tx=0, dst_tx=2, key="k")]
        report = critical_path(spans, 18.0, edges=edges)
        chain_txs = [s.tx_index for s in report.segments if s.phase != STALL]
        assert chain_txs == [0, 2]

    def test_recorder_edges_used_automatically(self):
        trace = record(
            [
                span(0, "execute", 0, 0.0, 10.0),
                span(1, "execute", 1, 0.0, 10.0),
                span(1, "execute", 2, 10.0, 18.0),
            ]
        )
        trace.on_edge("conflict", 0, 2, key="k")
        report = critical_path(trace, 18.0)
        chain_txs = [s.tx_index for s in report.segments if s.phase != STALL]
        assert chain_txs == [0, 2]

    def test_zero_duration_spans_ignored(self):
        spans = [
            span(0, "execute", 0, 0.0, 10.0),
            span(1, "guard", 1, 10.0, 10.0),  # must not wedge the walk
        ]
        report = critical_path(spans, 10.0)
        assert [s.phase for s in report.segments] == ["execute"]

    def test_empty_trace_is_one_stall(self):
        report = critical_path([], 12.0)
        assert [s.phase for s in report.segments] == [STALL]
        assert report.stall_us == pytest.approx(12.0)
        assert report.total_work_us == 0.0

    def test_deterministic_across_runs(self):
        spans = [
            span(w, "execute", t, float(t), float(t) + 5.0)
            for w, t in enumerate(range(8))
        ]
        a = critical_path(list(spans), 12.0)
        b = critical_path(list(reversed(spans)), 12.0)
        assert [(s.start_us, s.end_us, s.phase, s.tx_index) for s in a.segments] == [
            (s.start_us, s.end_us, s.phase, s.tx_index) for s in b.segments
        ]


class TestAttributions:
    def _report(self):
        return critical_path(
            [
                span(0, "execute", 0, 0.0, 10.0),
                span(0, "validate", 0, 10.0, 12.0),
                span(0, "execute", 1, 12.0, 14.0),
                span(0, "commit", 1, 20.0, 22.0),
            ],
            22.0,
        )

    def test_blame_sums_to_makespan(self):
        report = self._report()
        assert sum(report.phase_blame_us().values()) == pytest.approx(22.0)
        assert sum(report.tx_blame_us().values()) == pytest.approx(22.0)

    def test_top_txs_ranked_by_blame(self):
        report = self._report()
        top = report.top_txs(3)
        assert top[0][0] == 0
        assert top[0][1] == pytest.approx(12.0)

    def test_speedup_achieved(self):
        report = self._report()
        assert report.speedup_achieved(44.0) == pytest.approx(2.0)

    def test_as_dict_shape(self):
        d = self._report().as_dict()
        assert d["makespan_us"] == 22.0
        assert set(d["phase_blame_us"]) == {"execute", "validate", "commit", STALL}
        assert d["top_txs"][0] == {"tx": 0, "blame_us": pytest.approx(12.0)}

    def test_tables_render(self):
        report = self._report()
        assert "share of makespan" in critical_path_table(report)
        assert "tx 0" in blamed_txs_table(report)
