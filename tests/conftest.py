"""Shared fixtures: a small chain, funded ERC20/AMM state, tx helpers."""

from __future__ import annotations

import pytest

from repro.contracts import (
    AMM,
    ERC20,
    allowance_slot,
    balance_slot,
    encode_call,
)
from repro.contracts.amm import (
    RESERVE0_SLOT,
    RESERVE1_SLOT,
    TOKEN0_SLOT,
    TOKEN1_SLOT,
)
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import address_to_word, make_address
from repro.state.world import WorldState

ETHER = 10**18


@pytest.fixture()
def env() -> BlockEnv:
    return BlockEnv(number=14_000_000, coinbase=make_address(0xC0FFEE))


@pytest.fixture()
def token() -> bytes:
    return make_address(1)


@pytest.fixture()
def alice() -> bytes:
    return make_address(100)


@pytest.fixture()
def bob() -> bytes:
    return make_address(101)


@pytest.fixture()
def carol() -> bytes:
    return make_address(102)


@pytest.fixture()
def world(token, alice, bob, carol) -> WorldState:
    """A world with one ERC20 and three funded users."""
    world = WorldState()
    world.set_code(token, ERC20)
    world.set_storage(token, 0, 3_000)
    for user, amount in ((alice, 1_000), (bob, 1_000), (carol, 1_000)):
        world.set_storage(token, balance_slot(user), amount)
        world.set_balance(user, 1_000 * ETHER)
    world.db.cache.clear()
    world.db.reset_stats()
    return world


@pytest.fixture()
def amm_world(world, token, alice) -> tuple[WorldState, bytes, bytes, bytes]:
    """Extends ``world`` with a second token and an AMM pair.

    Returns (world, pair, token0, token1); alice holds both tokens and has
    approved the pair.
    """
    token2 = make_address(2)
    pair = make_address(3)
    world.set_code(token2, ERC20)
    world.set_code(pair, AMM)
    world.set_storage(pair, TOKEN0_SLOT, address_to_word(token))
    world.set_storage(pair, TOKEN1_SLOT, address_to_word(token2))
    world.set_storage(pair, RESERVE0_SLOT, 10**12)
    world.set_storage(pair, RESERVE1_SLOT, 10**12)
    world.set_storage(token, balance_slot(pair), 10**12)
    world.set_storage(token2, balance_slot(pair), 10**12)
    world.set_storage(token, balance_slot(alice), 10**9)
    world.set_storage(token2, balance_slot(alice), 10**9)
    world.set_storage(token, allowance_slot(alice, pair), 2**255)
    world.set_storage(token2, allowance_slot(alice, pair), 2**255)
    world.db.cache.clear()
    world.db.reset_stats()
    return world, pair, token, token2


def transfer_tx(sender: bytes, token: bytes, to: bytes, amount: int) -> Transaction:
    return Transaction(
        sender=sender,
        to=token,
        data=encode_call("transfer(address,uint256)", to, amount),
        gas_limit=300_000,
    )


def transfer_from_tx(
    sender: bytes, token: bytes, owner: bytes, to: bytes, amount: int
) -> Transaction:
    return Transaction(
        sender=sender,
        to=token,
        data=encode_call(
            "transferFrom(address,address,uint256)", owner, to, amount
        ),
        gas_limit=300_000,
    )


@pytest.fixture()
def run_tx(env):
    """Execute one tx against a world through a fresh view; returns TxResult."""
    from repro.evm.interpreter import execute_transaction
    from repro.sim.meter import CostMeter
    from repro.state.view import StateView

    def _run(world, tx, tracer=None, base=None):
        meter = CostMeter()
        view = StateView(world, base=base, meter=meter)
        return execute_transaction(view, tx, env, tracer=tracer, meter=meter)

    return _run
