"""Chaos engineering end to end: every executor under every fault scenario.

The graceful-degradation contract (ISSUE 3): under any default chaos
scenario, every executor completes — recovering in place or degrading
through the typed escalation ladder to a serial fallback — and the
certifier confirms the final state, receipts root and gas are identical to
fault-free serial execution.  And with fault injection disabled, makespans
are bit-identical to a build without the resilience layer.
"""

from __future__ import annotations

import pytest

from repro.check import (
    CHAOS_EXECUTORS,
    BlockFuzzer,
    FuzzConfig,
    run_chaos_block,
)
from repro.cli import main
from repro.concurrency import SerialExecutor
from repro.core.executor import ParallelEVMExecutor
from repro.obs import MetricsRegistry, degradation_table
from repro.resilience import SCENARIOS, FaultConfig, FaultPlan, RecoveryPolicy
from repro.workloads import ChainSpec, build_chain, conflict_ratio_block

FAST = FuzzConfig(txs_per_block=10, accounts=24, tokens=2, amm_pairs=1)


@pytest.fixture(scope="module")
def fuzzer() -> BlockFuzzer:
    return BlockFuzzer(FAST)


@pytest.fixture(scope="module")
def block(fuzzer):
    return fuzzer.block(2)


class TestChaosSuite:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_scenario_certifies_serial_equivalent(
        self, fuzzer, block, scenario
    ):
        report = run_chaos_block(
            fuzzer.chain, block, scenario, seed=11, threads=4
        )
        assert report.ok, report.describe()
        kind = SCENARIOS[scenario].kind
        if kind == "ingress":
            # Overload scenarios drive the serving stack end to end:
            # one served executor, serial-equivalent committed state.
            assert report.counters["admitted"] > 0
        elif kind == "replication":
            # Cluster hazards: the sweep covers every executor config,
            # the targeted hazards pin one.
            assert set(report.certification.executors) <= set(CHAOS_EXECUTORS)
        else:
            assert set(report.certification.executors) == set(CHAOS_EXECUTORS)
        assert report.faults_injected > 0, "scenario injected nothing"

    def test_chaos_runs_replay_from_seed(self, fuzzer, block):
        runs = [
            run_chaos_block(
                fuzzer.chain, block, "storage-flaky", seed=4, threads=4
            )
            for _ in range(2)
        ]
        assert runs[0].counters == runs[1].counters
        assert runs[0].describe() == runs[1].describe()

    def test_metrics_carry_per_executor_fault_series(self, fuzzer, block):
        metrics = MetricsRegistry()
        report = run_chaos_block(
            fuzzer.chain, block, "cache-thrash", seed=1, threads=4,
            metrics=metrics,
        )
        assert report.ok, report.describe()
        per_executor = metrics.labelled_values("resilience_cache_drops")
        assert {dict(k)["executor"] for k in per_executor} == set(
            CHAOS_EXECUTORS
        )
        assert metrics.sum_by_name("resilience_cache_drops") == pytest.approx(
            report.counters["cache_drops"]
        )
        assert (
            metrics.value("chaos_blocks_total", scenario="cache-thrash") == 1
        )


class TestDisabledInjectionIsFree:
    def test_zero_rate_plan_leaves_makespans_bit_identical(self, fuzzer, block):
        # The determinism contract: attaching the resilience layer with no
        # faults enabled must not move a single simulated microsecond.
        from repro.check.chaos import chaos_executors

        quiet = type(SCENARIOS["havoc"])(
            name="quiet", description="all rates zero", config=FaultConfig()
        )
        factories, _plans = chaos_executors(quiet, 0, RecoveryPolicy())
        for name, factory in factories.items():
            baseline = factory(4, None)
            baseline.fault_plan = None
            baseline.recovery = None
            plain = baseline.execute_block(
                fuzzer.chain.fresh_world(), block.txs, block.env
            )
            quiet_run = factory(4, None).execute_block(
                fuzzer.chain.fresh_world(), block.txs, block.env
            )
            assert quiet_run.makespan_us == plain.makespan_us, name
            assert quiet_run.writes == plain.writes, name

    def test_zero_rate_plan_on_the_ingress_path_is_byte_identical(self, tmp_path):
        # Same contract one layer up (ISSUE 8): wiring a zero-rate fault
        # plan into the served execution path must leave the whole ingress
        # session — every telemetry window and the end-of-run report —
        # byte-identical to a run with no plan attached at all.
        from repro.rpc import IngressConfig, run_ingress

        def run(tag: str, fault_config):
            path = tmp_path / f"{tag}.jsonl"
            report = run_ingress(
                IngressConfig(
                    blocks=8,
                    txs_per_block=8,
                    accounts=64,
                    clients=4,
                    threads=4,
                    seed=11,
                    window_blocks=4,
                    fault_config=fault_config,
                ),
                out=str(path),
            )
            return path.read_bytes(), report

        plain_blob, plain_report = run("plain", None)
        quiet_blob, quiet_report = run("quiet", FaultConfig())
        assert plain_report.ok and quiet_report.ok
        assert plain_blob and plain_blob == quiet_blob
        assert plain_report.as_dict() == quiet_report.as_dict()


class TestSerialFallbacks:
    def test_impossible_deadline_degrades_to_serial_fallback(self, fuzzer, block):
        # A 1 us deadline is unmeetable: every parallel executor must abort
        # through BlockDeadlineExceeded into the serial fallback — and the
        # block still certifies.
        report = run_chaos_block(
            fuzzer.chain,
            block,
            "worker-stall",
            seed=2,
            threads=4,
            recovery=RecoveryPolicy(block_deadline_us=1.0),
        )
        assert report.ok, report.describe()
        # Everyone except the serial baseline runs against the deadline.
        assert report.counters["deadline_aborts"] == len(CHAOS_EXECUTORS) - 1
        assert (
            report.counters["serial_block_fallbacks"]
            == len(CHAOS_EXECUTORS) - 1
        )

    def test_fallback_result_charges_the_burned_parallel_time(self):
        chain = build_chain(ChainSpec(tokens=1, amm_pairs=0, accounts=24))
        block = conflict_ratio_block(chain, 60, 8, ratio=1.0)
        serial = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        plan = FaultPlan(
            0, FaultConfig(), RecoveryPolicy(block_deadline_us=50.0)
        )
        executor = ParallelEVMExecutor(threads=4, fault_plan=plan)
        result = executor.execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.stats["serial_fallback"] == 1.0
        assert result.stats["fallback_at_us"] > 50.0
        # The aborted parallel attempt is charged: the serial pass starts at
        # the abort point, not at zero.  (It can still beat cold serial
        # because the attempt warmed the storage cache — that is realistic.)
        assert result.makespan_us > result.stats["fallback_at_us"]
        assert result.writes == serial.writes

    def test_escalation_reaches_per_tx_serial_fallback(self):
        # redo_budget=0 escalates every conflict straight to re-execution;
        # reexec_budget=1 then forces the per-tx serial fallback at the
        # commit point.  State must still match serial exactly.
        chain = build_chain(ChainSpec(tokens=1, amm_pairs=0, accounts=24))
        block = conflict_ratio_block(chain, 61, 10, ratio=1.0)
        serial = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        plan = FaultPlan(
            7,
            FaultConfig(reconflict_rate=1.0, corrupt_guard_rate=1.0),
            RecoveryPolicy(redo_budget=0, reexec_budget=1),
        )
        executor = ParallelEVMExecutor(threads=4, fault_plan=plan)
        result = executor.execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.writes == serial.writes
        assert result.stats["redo_budget_escalations"] > 0
        assert result.stats["serial_tx_fallbacks"] > 0
        assert plan.counters["serial_tx_fallbacks"] == (
            result.stats["serial_tx_fallbacks"]
        )


class TestReporting:
    def test_degradation_table_rows_and_absence(self, fuzzer, block):
        assert degradation_table(MetricsRegistry()) is None
        metrics = MetricsRegistry()
        run_chaos_block(
            fuzzer.chain, block, "storage-flaky", seed=0, threads=4,
            metrics=metrics,
        )
        table = degradation_table(metrics)
        assert table is not None
        assert "faults injected" in table
        assert "storage read retries" in table

    def test_cli_chaos_smoke(self, capsys):
        code = main(
            [
                "chaos",
                "--scenario",
                "worker-crash",
                "--blocks",
                "1",
                "--txs",
                "8",
                "--threads",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos[worker-crash] seed 0" in out
        assert "serial-equivalent" in out
        assert "Degradation summary" in out
