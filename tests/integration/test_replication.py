"""End-to-end replication: clusters, failover sweeps, chaos scenarios.

The tentpole invariants of ISSUE 10 exercised through the real stack:

- a replicated cluster keeps every replica byte-for-byte in sync with
  the primary's journal and state;
- the failover sweep (primary crashed at every commit crash site) ends
  in a verified promotion with RPO=0 and provable stale-epoch fencing;
- the four ``kind="replication"`` chaos scenarios dispatch through
  ``run_chaos_block`` and certify clean;
- the RPC facade follows a promotion: re-pointed service, re-queued
  mempool, replication-aware health.
"""

from __future__ import annotations

import pytest

from repro.check import run_chaos_block
from repro.check.crashfuzz import CRASH_EXECUTORS
from repro.check.failover import failover_sweep
from repro.check.fuzzer import BlockFuzzer, FuzzConfig
from repro.errors import NotPrimary
from repro.mempool import Mempool, MempoolConfig, wire_transaction
from repro.obs import MetricsRegistry
from repro.replication import ClusterConfig, ReplicatedChainService
from repro.resilience import SCENARIOS
from repro.rpc import RpcConfig, RpcFacade


@pytest.fixture(scope="module")
def fuzzer():
    return BlockFuzzer(FuzzConfig(txs_per_block=6, accounts=32, tokens=2, amm_pairs=1))


class _SweepChain:
    __slots__ = ("world", "env")

    def __init__(self, world, env):
        self.world = world
        self.env = env


def _blocks(fuzzer, count, seed=0):
    from dataclasses import replace

    base = fuzzer.chain.env.number
    out = []
    for i in range(count):
        generated = fuzzer.block(seed + i)
        out.append(
            type(generated)(
                number=base + i,
                txs=[replace(tx) for tx in generated.txs],
                env=replace(fuzzer.chain.env, number=base + i),
            )
        )
    return out


def _hashes(block):
    import hashlib

    return [
        hashlib.blake2b(f"{block.number}:{i}".encode(), digest_size=32).digest()
        for i in range(len(block.txs))
    ]


class TestClusterStreaming:
    def test_replicas_track_the_primary_exactly(self, fuzzer):
        cluster = ReplicatedChainService(
            _SweepChain(fuzzer.chain.fresh_world(), fuzzer.chain.env),
            CRASH_EXECUTORS["parallelevm"],
            ClusterConfig(replicas=2, threads=4),
        )
        for block in _blocks(fuzzer, 3):
            cluster.ingest_block(block, tx_hashes=_hashes(block))
        tip_fp = cluster.service.world.fingerprint()
        for replica in cluster.replicas:
            assert replica.state == "streaming"
            assert replica.world.fingerprint() == tip_fp
            assert replica.last_sealed_block == cluster.service.height - 1
        assert cluster.max_replication_lag() == 0
        assert not cluster.laggards()

    def test_checkpoint_shipping_prunes_replica_journals(self, fuzzer):
        cluster = ReplicatedChainService(
            _SweepChain(fuzzer.chain.fresh_world(), fuzzer.chain.env),
            CRASH_EXECUTORS["serial"],
            ClusterConfig(replicas=1, threads=1, checkpoint_interval=2),
        )
        blocks = _blocks(fuzzer, 4)
        for block in blocks:
            cluster.ingest_block(block, tx_hashes=_hashes(block))
        replica = cluster.replicas[0]
        assert replica.world.fingerprint() == cluster.service.world.fingerprint()
        # The checkpoint pruned the replica's own journal; its snapshot
        # advanced past genesis.
        assert replica.snapshot_block > fuzzer.chain.env.number - 1
        # The append-only feed keeps everything; the pruned replica
        # journal holds only the post-checkpoint suffix.
        assert replica.medium.journal_size() < len(cluster.feed)


class TestFailoverSweep:
    def test_two_executor_sweep_is_lossless_everywhere(self, fuzzer):
        report = failover_sweep(
            txs_per_block=5,
            threads=4,
            executors={
                name: CRASH_EXECUTORS[name]
                for name in ("serial", "parallelevm")
            },
        )
        assert report.ok, report.describe()
        assert report.crashes_injected == len(report.sites) * 2
        assert report.failovers == report.crashes_injected
        assert report.stale_frames_rejected > 0
        # Detection (the heartbeat timeout) dominates; the bound is tight.
        assert report.min_failover_us >= 150_000.0
        assert report.max_failover_us < 300_000.0
        assert report.certification.ok

    def test_primary_crash_scenario_via_chaos_dispatch(self, fuzzer):
        block = fuzzer.block(0)
        report = run_chaos_block(
            fuzzer.chain, block, SCENARIOS["primary-crash"], seed=0, threads=4
        )
        assert report.ok, report.describe()
        assert report.counters["failovers"] > 0
        assert report.counters["stale_frames_rejected"] > 0


class TestReplicationChaosScenarios:
    @pytest.mark.parametrize(
        "name", ["laggy-replica", "corrupt-feed", "divergent-replica"]
    )
    def test_scenario_certifies_clean(self, fuzzer, name):
        metrics = MetricsRegistry()
        block = fuzzer.block(0)
        report = run_chaos_block(
            fuzzer.chain, block, SCENARIOS[name], seed=0, threads=4,
            metrics=metrics,
        )
        assert report.ok, report.describe()
        assert report.scenario == name
        assert metrics.value("chaos_blocks_total", scenario=name) == 1.0

    def test_divergence_evidence_is_kept(self, fuzzer):
        report = run_chaos_block(
            fuzzer.chain, fuzzer.block(0), SCENARIOS["divergent-replica"],
            seed=2, threads=4,
        )
        assert report.ok
        assert report.counters["divergences_caught"] == 1.0


class TestFacadeFailover:
    def test_promotion_repoints_facade_and_requeues(self, fuzzer):
        chainlike = _SweepChain(fuzzer.chain.fresh_world(), fuzzer.chain.env)
        cluster = ReplicatedChainService(
            chainlike,
            CRASH_EXECUTORS["parallelevm"],
            ClusterConfig(replicas=2, threads=4),
        )
        mempool = Mempool(MempoolConfig(), cluster.service.world)
        facade = RpcFacade(
            cluster.service,
            mempool,
            RpcConfig(block_txs=8),
            replication=cluster.view(),
        )
        assert facade.health()["role"] == "primary"

        for block in _blocks(fuzzer, 2):
            cluster.ingest_block(block, tx_hashes=_hashes(block))

        # In-flight txs pooled but not yet committed at crash time.
        from repro.evm.message import Transaction

        sender = fuzzer.chain.accounts[0]
        for nonce in range(3):
            on_chain = facade.send_transaction(
                wire_transaction(
                    Transaction(
                        sender=sender,
                        to=fuzzer.chain.accounts[1],
                        value=10,
                        data=b"",
                        gas_limit=21_000,
                        gas_price=5,
                        nonce=nonce,
                    )
                )
            )
            assert on_chain["tx_hash"].startswith("0x")
        assert len(mempool) == 3

        now = cluster.service.sim_time_us
        cluster.fail_primary(now)
        report = cluster.failover(now + 150_001.0)
        requeued = cluster.repoint_facade(facade, report)
        assert requeued == 3
        assert report.requeued_txs == 3
        assert facade.service is cluster.service
        assert facade.mempool.world is cluster.service.world
        health = facade.health()
        assert health["role"] == "primary"
        assert health["epoch"] == 2
        # The promoted primary can produce a block from the re-queued pool.
        produced = facade.produce_block(now + 200_000.0)
        assert produced.outcome is not None
        assert len(produced.entries) == 3

    def test_demoted_primarys_facade_sheds_writes(self, fuzzer):
        chainlike = _SweepChain(fuzzer.chain.fresh_world(), fuzzer.chain.env)
        cluster = ReplicatedChainService(
            chainlike,
            CRASH_EXECUTORS["serial"],
            ClusterConfig(replicas=1, threads=1),
        )
        mempool = Mempool(MempoolConfig(), cluster.service.world)
        # This facade keeps the *old primary's* view: after failover its
        # role flips to "demoted" and it must shed writes.
        facade = RpcFacade(
            cluster.service,
            mempool,
            RpcConfig(),
            replication=cluster.view("primary-0"),
        )
        for block in _blocks(fuzzer, 1):
            cluster.ingest_block(block, tx_hashes=_hashes(block))
        now = cluster.service.sim_time_us
        cluster.fail_primary(now)
        cluster.failover(now + 150_001.0)

        from repro.evm.message import Transaction

        wire = wire_transaction(
            Transaction(
                sender=fuzzer.chain.accounts[0],
                to=fuzzer.chain.accounts[1],
                value=10,
                data=b"",
                gas_limit=21_000,
                gas_price=5,
                nonce=0,
            )
        )
        with pytest.raises(NotPrimary) as excinfo:
            facade.send_transaction(wire)
        assert excinfo.value.role == "demoted"
        assert excinfo.value.epoch == 2
        assert facade.health()["role"] == "demoted"
