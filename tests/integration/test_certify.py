"""The differential harness end to end: certifier, replay oracle, mutations.

This is the seeded property test of the repo's central invariant
(Theorem 1): for fuzzed adversarial blocks, every executor — including
both scheduled-validator granularities — must reproduce serial execution
exactly.  The mutation self-test then proves the oracle is live by
injecting a known conflict-detection bug and watching it get caught and
shrunk to a minimal repro.
"""

from __future__ import annotations

import json

import pytest

from repro.check import (
    BlockFuzzer,
    FuzzConfig,
    RedoReplayChecker,
    block_to_json,
    certify_block,
    inject_conflict_bug,
    mutation_self_test,
)
from repro.core.executor import ParallelEVMExecutor
from repro.obs import MetricsRegistry
from repro.workloads import ChainSpec, build_chain, conflict_ratio_block

FAST = FuzzConfig(txs_per_block=14, accounts=24, tokens=2, amm_pairs=1)


@pytest.fixture(scope="module")
def fuzzer() -> BlockFuzzer:
    return BlockFuzzer(FAST)


class TestCertifier:
    def test_fuzzed_blocks_are_serial_equivalent(self, fuzzer):
        metrics = MetricsRegistry()
        for seed in range(3):
            report = certify_block(
                fuzzer.chain, fuzzer.block(seed), threads=4, metrics=metrics
            )
            assert report.ok, report.describe()
            # Full suite: six executors plus the two validator replays.
            assert len(report.executors) == 8
        assert metrics.value("certify_blocks_total") == 3
        assert metrics.value("certify_failed_blocks_total") is None

    def test_redo_replays_actually_run(self, fuzzer):
        # The §6.3-style contended block guarantees conflicts, hence redos,
        # hence replay-oracle coverage; zero checks would mean the oracle
        # is wired to nothing.
        chain = build_chain(ChainSpec(tokens=1, amm_pairs=0, accounts=24))
        block = conflict_ratio_block(chain, 50, 10, ratio=1.0)
        report = certify_block(
            chain,
            block,
            threads=4,
            executors={
                "parallelevm": lambda threads, checker: ParallelEVMExecutor(
                    threads=threads, redo_checker=checker
                )
            },
            include_scheduled=False,
        )
        assert report.ok, report.describe()
        assert report.redo_replays > 0

    def test_strict_checker_is_silent_on_honest_executor(self):
        chain = build_chain(ChainSpec(tokens=1, amm_pairs=0, accounts=24))
        block = conflict_ratio_block(chain, 51, 10, ratio=1.0)
        checker = RedoReplayChecker(strict=True)
        executor = ParallelEVMExecutor(threads=4, redo_checker=checker)
        executor.execute_block(chain.fresh_world(), block.txs, block.env)
        assert checker.checks > 0
        assert checker.divergences == []


class TestMutationSelfTest:
    @pytest.mark.parametrize("mutation", ["conflict-blind", "storage-blind"])
    def test_injected_bug_is_caught_and_shrunk(self, mutation):
        chain = build_chain(ChainSpec(tokens=1, amm_pairs=0, accounts=24))
        outcome = mutation_self_test(
            chain, mutation=mutation, tx_count=10, threads=4
        )
        assert outcome.caught, outcome.describe()
        assert "writes" in outcome.divergence_fields
        # Two overlapping drains of the hot slot are the minimal repro.
        assert outcome.shrink is not None
        assert outcome.shrink.tx_count == 2

    def test_mutation_is_scoped_and_restored(self, fuzzer):
        import repro.core.executor as target

        original = target.find_conflicts
        with inject_conflict_bug("conflict-blind"):
            assert target.find_conflicts is not original
            from repro.concurrency import base

            assert base.find_conflicts is original  # others stay honest
        assert target.find_conflicts is original


class TestArtifacts:
    def test_block_json_round_trips_the_essentials(self, fuzzer):
        block = fuzzer.block(0)
        report = certify_block(fuzzer.chain, block, threads=4)
        payload = json.loads(block_to_json(block, report))
        assert payload["block_number"] == block.number
        assert len(payload["txs"]) == len(block.txs)
        assert payload["txs"][0]["sender"] == block.txs[0].sender.hex()
        assert payload["divergences"] == []
