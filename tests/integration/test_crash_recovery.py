"""End-to-end crash/recovery certification on fuzzed blocks.

The tentpole contract of the durability layer, exercised the way the CI
crash-smoke job does: a deterministic process-death sweep over every
commit-path crash site for all seven executor configs, the reorg
round trip against serial references, and the off-by-default guarantee
that attaching no pipeline leaves execution bit-identical.
"""

from __future__ import annotations

import pytest

from repro.check import (
    CRASH_EXECUTORS,
    BlockFuzzer,
    FuzzConfig,
    crash_sweep_block,
    reorg_roundtrip_block,
    run_chaos_block,
)
from repro.concurrency import SerialExecutor
from repro.core.executor import ParallelEVMExecutor
from repro.durability import (
    DurableCommitPipeline,
    MemoryMedium,
    enumerate_crash_sites,
    recover,
)
from repro.obs import MetricsRegistry

FAST = FuzzConfig(txs_per_block=8)


@pytest.fixture(scope="module")
def fuzzer() -> BlockFuzzer:
    return BlockFuzzer(FAST)


@pytest.fixture(scope="module")
def block(fuzzer):
    return fuzzer.block(4)


class TestCrashSweep:
    def test_every_site_is_atomic_for_every_executor(self, fuzzer, block):
        metrics = MetricsRegistry()
        report = crash_sweep_block(
            fuzzer.chain,
            block,
            threads=4,
            checkpoint_interval=1,
            metrics=metrics,
        )
        assert report.ok, report.describe()
        sites = enumerate_crash_sites(len(block.txs), checkpoint=True)
        assert report.sites == sites
        assert sorted(report.executors) == sorted(CRASH_EXECUTORS)
        # Every (site, executor) pair crashed once and recovered once; a
        # site that silently stopped firing would be a divergence instead.
        expected = len(sites) * len(CRASH_EXECUTORS)
        assert report.crashes_injected == expected
        assert report.recoveries == expected
        assert metrics.value("crashfuzz_blocks_total") == 1
        assert metrics.value("crashfuzz_failed_blocks_total") is None

    def test_sweep_report_shares_the_certification_plumbing(self, fuzzer, block):
        report = crash_sweep_block(
            fuzzer.chain, block, threads=4, executors={"serial": lambda t: SerialExecutor()}
        )
        cert = report.certification
        assert cert.ok
        assert cert.block_number == block.number
        assert cert.tx_count == len(block.txs)


class TestPipelinedCrashSweep:
    def test_speculative_state_never_survives_a_crash(self, fuzzer, block):
        # ISSUE 8: with block N+1 executing speculatively against N's
        # uncommitted overlay, a crash anywhere in N's commit must recover
        # to exactly pre-N or N's sealed state — never the speculative
        # overlay — and the resumed chain must match the serial reference.
        from repro.check import pipelined_crash_sweep_block

        metrics = MetricsRegistry()
        report = pipelined_crash_sweep_block(
            fuzzer.chain, block, threads=4, metrics=metrics
        )
        assert report.ok, report.describe()
        sites = enumerate_crash_sites(len(block.txs) // 2, checkpoint=False)
        assert report.sites == sites
        expected = len(sites) * len(CRASH_EXECUTORS)
        assert report.crashes_injected == expected
        assert report.recoveries == expected
        # Pre-marker crashes discard the speculation; post-marker crashes
        # salvage it.  Together they cover every (site, executor) pair.
        assert report.speculations_discarded + report.speculations_salvaged == expected
        assert report.speculations_discarded > 0
        assert report.speculations_salvaged > 0
        assert metrics.value("crashfuzz_pipeline_blocks_total") == 1
        assert metrics.value("crashfuzz_failed_pipeline_blocks_total") is None

    def test_pipelined_sweep_needs_two_transactions(self, fuzzer, block):
        from dataclasses import replace

        from repro.check import pipelined_crash_sweep_block
        from repro.workloads import Block

        tiny = Block(
            number=block.number, txs=[replace(block.txs[0])], env=block.env
        )
        with pytest.raises(ValueError):
            pipelined_crash_sweep_block(fuzzer.chain, tiny, threads=4)


class TestReorgRoundTrip:
    def test_rollback_and_fork_match_serial_references(self, fuzzer, block):
        metrics = MetricsRegistry()
        report = reorg_roundtrip_block(fuzzer.chain, block, threads=4, metrics=metrics)
        assert report.ok, report.describe()
        assert sorted(report.executors) == sorted(CRASH_EXECUTORS)
        assert metrics.value("crashfuzz_reorg_roundtrips_total") == 1


class TestChaosScenarios:
    def test_crash_commit_scenario(self, fuzzer, block):
        report = run_chaos_block(fuzzer.chain, block, "crash-commit", threads=4)
        assert report.ok, report.describe()
        assert report.faults_injected > 0

    def test_reorg_rollback_scenario(self, fuzzer, block):
        report = run_chaos_block(fuzzer.chain, block, "reorg-rollback", threads=4)
        assert report.ok, report.describe()


class TestDurabilityOffByDefault:
    def test_no_pipeline_is_bit_identical(self, fuzzer, block):
        plain = ParallelEVMExecutor(threads=4)
        attached = ParallelEVMExecutor(threads=4, durability=None)
        r1 = plain.execute_block(fuzzer.chain.fresh_world(), block.txs, block.env)
        r2 = attached.execute_block(fuzzer.chain.fresh_world(), block.txs, block.env)
        assert r1.makespan_us == r2.makespan_us
        assert r1.writes == r2.writes

        w1 = fuzzer.chain.fresh_world()
        w2 = fuzzer.chain.fresh_world()
        assert plain.commit_block(w1, block.number, r1) == 0.0
        w2.apply(r2.writes)
        assert w1.fingerprint() == w2.fingerprint()

    def test_durable_commit_reaches_the_same_state_at_a_cost(self, fuzzer, block):
        executor = ParallelEVMExecutor(threads=4)
        result = executor.execute_block(
            fuzzer.chain.fresh_world(), block.txs, block.env
        )
        medium = MemoryMedium()
        durable = ParallelEVMExecutor(
            threads=4, durability=DurableCommitPipeline(medium)
        )
        world = fuzzer.chain.fresh_world()
        elapsed = durable.commit_block(world, block.number, result)
        assert elapsed > 0.0  # journaling + fsyncs cost simulated time

        reference = fuzzer.chain.fresh_world()
        reference.apply(result.writes)
        assert world.fingerprint() == reference.fingerprint()
        # And the journal alone rebuilds that state from genesis.
        recovered = recover(medium, fuzzer.chain.fresh_world)
        assert recovered.world.fingerprint() == reference.fingerprint()
        assert recovered.last_committed_block == block.number
