"""Theorem 1 in practice: every executor reproduces the serial state.

These are the §6.2-style correctness checks, run across every workload
family: mainnet-like blocks, controlled conflict ratios, hot-recipient
floods, and AMM-heavy traffic.
"""

from __future__ import annotations

import pytest

from repro.concurrency import (
    BlockSTMExecutor,
    OCCExecutor,
    SerialExecutor,
    TwoPhaseExecutor,
    TwoPLExecutor,
)
from repro.core.executor import ParallelEVMExecutor
from repro.workloads import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    build_chain,
    conflict_ratio_block,
)
from repro.workloads.erc20_workload import hot_recipient_block

EXECUTOR_CLASSES = [
    TwoPLExecutor,
    OCCExecutor,
    BlockSTMExecutor,
    TwoPhaseExecutor,
    ParallelEVMExecutor,
]


@pytest.fixture(scope="module")
def chain():
    return build_chain(ChainSpec(tokens=4, amm_pairs=2, accounts=160))


def blocks_under_test(chain):
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=60))
    return {
        "mainnet": wl.block(14_000_000),
        "conflicts-0": conflict_ratio_block(chain, 2, 40, ratio=0.0),
        "conflicts-50": conflict_ratio_block(chain, 3, 40, ratio=0.5),
        "conflicts-100": conflict_ratio_block(chain, 4, 40, ratio=1.0),
        "hot-recipient": hot_recipient_block(chain, 5, 40),
    }


@pytest.fixture(scope="module")
def serial_results(chain):
    return {
        name: SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        for name, block in blocks_under_test(chain).items()
    }


@pytest.mark.parametrize("executor_cls", EXECUTOR_CLASSES)
@pytest.mark.parametrize(
    "block_name", ["mainnet", "conflicts-0", "conflicts-50", "conflicts-100",
                   "hot-recipient"]
)
def test_final_state_matches_serial(chain, serial_results, executor_cls, block_name):
    block = blocks_under_test(chain)[block_name]
    serial = serial_results[block_name]
    result = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert result.writes == serial.writes


@pytest.mark.parametrize("executor_cls", EXECUTOR_CLASSES)
def test_gas_totals_match_serial(chain, serial_results, executor_cls):
    block = blocks_under_test(chain)["mainnet"]
    serial = serial_results["mainnet"]
    result = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert result.gas_used == serial.gas_used


@pytest.mark.parametrize("executor_cls", EXECUTOR_CLASSES)
def test_per_tx_success_flags_match_serial(chain, serial_results, executor_cls):
    block = blocks_under_test(chain)["mainnet"]
    serial = serial_results["mainnet"]
    result = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert [r.success for r in result.tx_results] == [
        r.success for r in serial.tx_results
    ]


@pytest.mark.parametrize("threads", [1, 2, 7, 16, 33])
def test_parallelevm_thread_count_never_changes_state(chain, serial_results, threads):
    block = blocks_under_test(chain)["mainnet"]
    serial = serial_results["mainnet"]
    result = ParallelEVMExecutor(threads=threads).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert result.writes == serial.writes


def test_all_transactions_commit_exactly_once(chain):
    block = blocks_under_test(chain)["conflicts-100"]
    result = ParallelEVMExecutor(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    indices = [r.tx.tx_index for r in result.tx_results]
    assert sorted(indices) == list(range(len(block.txs)))


def test_parallelevm_redo_stats_are_consistent(chain):
    block = blocks_under_test(chain)["conflicts-100"]
    result = ParallelEVMExecutor(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    stats = result.stats
    assert stats["conflicting_txs"] > 0
    assert (
        stats["redo_successes"] + stats["redo_failures"] == stats["redo_attempts"]
    )
    # Every redo failure forced one full re-execution beyond the first pass.
    assert stats["executions"] == len(block.txs) + stats["full_aborts"]


@pytest.mark.parametrize("executor_cls", EXECUTOR_CLASSES)
def test_receipts_root_matches_serial(chain, serial_results, executor_cls):
    """Consensus-level check on the redo phase's log rewriting: the
    receipts trie (status, cumulative gas, blooms, logs) must be
    byte-identical to serial execution."""
    from repro.state.receipts import receipts_root

    block = blocks_under_test(chain)["conflicts-100"]
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    result = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert receipts_root(result.tx_results) == receipts_root(serial.tx_results)


def test_logs_match_serial_for_redone_transactions(chain):
    """Event payloads rewritten by the redo phase must equal serial logs."""
    block = blocks_under_test(chain)["conflicts-100"]
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    result = ParallelEVMExecutor(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    serial_logs = {
        r.tx.tx_index: [(l.address, l.topics, l.data) for l in r.logs]
        for r in serial.tx_results
    }
    for r in result.tx_results:
        assert [
            (l.address, l.topics, l.data) for l in r.logs
        ] == serial_logs[r.tx.tx_index]
