"""Lifecycle tracing end to end: the waterfall tiling invariant over the
full serving stack, zero-cost detachment, SLO alerting under chaos, and
the composed loadgen-soak stream (ISSUE 9)."""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.suite import EXECUTOR_FACTORIES
from repro.obs.lifecycle import TILING_EPS_US, WATERFALL_PHASES, SloConfig
from repro.resilience import SCENARIOS
from repro.rpc import IngressConfig, run_ingress
from repro.service import SoakConfig, run_soak


def small_config(**overrides) -> IngressConfig:
    base = dict(
        blocks=8, txs_per_block=10, accounts=96, clients=5, threads=4,
        seed=3, window_blocks=4, rate_multiplier=1.8,
    )
    base.update(overrides)
    return IngressConfig(**base)


def _waterfalls(report_sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in report_sink.getvalue().splitlines()]


class TestTilingInvariant:
    @pytest.mark.parametrize("executor", sorted(EXECUTOR_FACTORIES))
    @pytest.mark.parametrize("pipelined", [False, True])
    def test_every_traced_tx_tiles_exactly(self, executor, pipelined):
        sink = io.StringIO()
        report = run_ingress(
            small_config(executor=executor, pipeline=pipelined),
            waterfalls=sink,
        )
        assert report.ok, report.divergences
        records = _waterfalls(sink)
        committed = [r for r in records if r["outcome"] == "committed"]
        assert committed, "no committed waterfalls traced"
        for record in records:
            total = sum(record["phases"].values())
            assert total == pytest.approx(
                record["latency_us"], abs=TILING_EPS_US
            ), record
            assert all(d >= 0.0 for d in record["phases"].values()), record
        # Committed records carry all six phases; the report folds them.
        assert set(committed[0]["phases"]) == set(WATERFALL_PHASES)
        assert report.lifecycle["committed"] == len(committed)

    def test_shed_records_tile_up_to_the_shed_instant(self):
        from repro.mempool import MempoolConfig

        sink = io.StringIO()
        report = run_ingress(
            small_config(
                rate_multiplier=3.0,
                spike_multiplier=3.0,
                mempool=MempoolConfig(capacity=48, tx_ttl_us=120_000.0),
            ),
            waterfalls=sink,
        )
        shed = [r for r in _waterfalls(sink) if r["outcome"].startswith("shed:")]
        assert shed, "pressured TTL pool must shed"
        for record in shed:
            assert set(record["phases"]) == {"retry", "admission", "queue"}
            assert sum(record["phases"].values()) == pytest.approx(
                record["latency_us"], abs=TILING_EPS_US
            )
        assert report.lifecycle["shed"] == len(shed)


class TestZeroCostDetachment:
    def test_lifecycle_off_leaves_run_identical(self):
        on = run_ingress(small_config(lifecycle=True))
        off = run_ingress(small_config(lifecycle=False))
        assert off.lifecycle is None and off.slo is None and off.flight is None
        # The serving outcome and every simulated-time figure coincide.
        assert on.committed == off.committed
        assert on.rejected == off.rejected
        assert on.shed == off.shed
        for name, value in off.counters.items():
            assert on.counters.get(name) == value
        strip = lambda d: {
            k: v for k, v in d.items() if k not in ("lifecycle", "slo")
        }
        assert strip(on.summary) == strip(off.summary)

    def test_waterfall_stream_is_byte_identical_same_seed(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            run_ingress(small_config(), waterfalls=str(path))
        blobs = [path.read_bytes() for path in paths]
        assert blobs[0] and blobs[0] == blobs[1]


class TestSloAndFlightRecorder:
    def test_slow_consumer_burns_the_latency_slo(self):
        scenario = SCENARIOS["slow-consumer"]
        from repro.check import ingress_config_for

        config = ingress_config_for(scenario, seed=1)
        report = run_ingress(config)
        assert report.ok, report.divergences
        assert report.slo["alerts"] >= 1
        assert report.slo["latency"]["total_burn"] > 1.0
        # Each alert snapshotted the flight ring.
        assert report.flight["triggered"] >= 1
        assert report.flight["dumps"]
        dump = report.flight["dumps"][0]
        # Every dump carries a typed incident reason: an overload event
        # (backpressure / circuit-open), an SLO burn, or degradation.
        assert dump["reason"].split(":")[0] in (
            "backpressure", "circuit-open", "slo", "degradation"
        )
        assert len(dump["records"]) <= config.flight_capacity

    def test_degradation_scenario_triggers_flight_dump(self):
        report = run_ingress(small_config(scenario="corrupt-guard"))
        assert report.ok, report.divergences
        reasons = {d["reason"] for d in report.flight["dumps"]}
        assert any(r.startswith("degradation:") for r in reasons), reasons

    def test_scenario_counters_surface_slo_and_flight(self):
        from repro.check import run_ingress_scenario

        chaos = run_ingress_scenario(SCENARIOS["slow-consumer"], seed=1)
        assert chaos.counters["slo_alerts"] >= 1
        assert chaos.counters["flight_dumps"] >= 1


class TestLoadgenSoak:
    def test_single_stream_carries_every_section(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        config = SoakConfig(
            blocks=16, window_blocks=8, accounts=1_500, txs_per_block=16,
            loadgen_clients=4, rate_multiplier=1.6, seed=7,
        )
        report = run_soak(config, out=str(path))
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            snap = json.loads(line)
            for section in ("cache", "counters", "lifecycle", "slo"):
                assert section in snap, f"missing {section}"
        assert report.lifecycle is not None
        assert report.lifecycle["committed"] > 0
        assert report.blocks > 0 and report.cache_bounded

    def test_loadgen_soak_is_deterministic(self, tmp_path):
        config = SoakConfig(
            blocks=12, window_blocks=6, accounts=1_000, txs_per_block=12,
            loadgen_clients=4, rate_multiplier=1.4, seed=9,
        )
        blobs = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            run_soak(config, out=str(path))
            blobs.append(path.read_bytes())
        assert blobs[0] and blobs[0] == blobs[1]

    def test_pipelined_loadgen_soak_composes(self):
        config = SoakConfig(
            blocks=12, window_blocks=6, accounts=1_000, txs_per_block=12,
            loadgen_clients=4, rate_multiplier=1.4, seed=9, pipeline=True,
        )
        report = run_soak(config)
        assert report.lifecycle["committed"] > 0
        # The pipeline waterfall still closes: blame phases fold cleanly.
        phases = report.lifecycle["blame"]["phases"]
        assert set(phases) == set(WATERFALL_PHASES)

    def test_stream_mode_block_latency_slo(self):
        config = SoakConfig(
            blocks=12, window_blocks=6, accounts=1_000, txs_per_block=12,
            seed=9, slo_config=SloConfig(latency_objective_us=1.0),
        )
        report = run_soak(config)
        assert report.lifecycle is None  # per-tx tracking needs loadgen
        assert report.slo["latency"]["bad"] == report.slo["latency"]["total"]
        assert report.slo["alerts"] >= 1
