"""The pipelined chain service end to end: equivalence, determinism, gain.

The pipeline's contract has three legs, each enforced here:

1. **Equivalence** — pipelining changes *when* the simulated clock says
   stages ran, never what executed: every executor config, including a
   faulted chaos run, ends on the serial baseline's exact state
   fingerprint, gas and tx count with the pipeline attached.
2. **Determinism** — the same pipelined :class:`SoakConfig` produces a
   byte-identical JSONL snapshot stream.
3. **Gain** — on the default soak stream with a durable commit pipeline
   attached, prefetch + async commit cut simulated service time per block
   by >= 15% versus the synchronous service, and the critical-path
   profiler sees the commit lane's share of the blame shrink.
"""

from __future__ import annotations

import io

from repro.bench.suite import EXECUTOR_FACTORIES
from repro.durability import DurableCommitPipeline
from repro.obs import TraceRecorder
from repro.obs.critical_path import critical_path
from repro.pipeline import PipelineConfig, PipelineCoordinator
from repro.service import ChainService, SoakConfig, run_soak
from repro.workloads.stream import BlockStream, StreamSpec, build_stream_chain

SMALL = dict(
    blocks=20,
    window_blocks=5,
    accounts=400,
    txs_per_block=8,
    seed=11,
    cache_capacity=20_000,
    threads=4,
)


def _soak(**overrides):
    buf = io.StringIO()
    report = run_soak(SoakConfig(**{**SMALL, **overrides}), out=buf)
    return buf.getvalue(), report


def _service_run(
    executor_name,
    pipeline_config,
    blocks=12,
    durable=False,
    trace=None,
    **spec_overrides,
):
    spec = StreamSpec(
        **{
            "accounts": 400,
            "txs_per_block": 8,
            "seed": 11,
            **spec_overrides,
        }
    )
    chain = build_stream_chain(spec, cache_capacity=100_000)
    executor = EXECUTOR_FACTORIES[executor_name](4, None)
    if durable:
        executor.durability = DurableCommitPipeline()
    coordinator = (
        PipelineCoordinator(pipeline_config, trace=trace)
        if pipeline_config is not None
        else None
    )
    service = ChainService(BlockStream(chain), executor, pipeline=coordinator)
    for _ in service.run(blocks):
        pass
    return service, chain


class TestPipelineDeterminism:
    def test_pipelined_soak_jsonl_is_byte_identical(self):
        first, report_a = _soak(pipeline=True)
        second, report_b = _soak(pipeline=True)
        assert first == second
        assert first
        assert report_a.as_dict() == report_b.as_dict()

    def test_pipeline_off_stream_unchanged_by_the_subsystem(self):
        """SoakConfig defaults leave the synchronous stream untouched."""
        baseline, _ = _soak()
        explicit_off, _ = _soak(pipeline=False)
        assert baseline == explicit_off

    def test_pipelined_stream_differs_from_synchronous(self):
        """The pipeline visibly changes throughput telemetry when on."""
        on, _ = _soak(pipeline=True)
        off, _ = _soak()
        assert on != off


class TestPipelineEquivalence:
    def test_every_executor_matches_serial_under_the_pipeline(self):
        """All seven configs, pipelined, land on the serial sync state."""
        serial, serial_chain = _service_run("serial", None)
        fingerprint = serial_chain.world.fingerprint()
        for name in sorted(EXECUTOR_FACTORIES):
            service, chain = _service_run(
                name, PipelineConfig(), durable=True
            )
            assert chain.world.fingerprint() == fingerprint, name
            assert service.gas_used == serial.gas_used, name
            assert service.txs_committed == serial.txs_committed, name

    def test_faulted_chaos_run_matches_serial_under_the_pipeline(self):
        """A redo-storm soak with the pipeline on certifies against the
        unfaulted synchronous run: same counters, same final summary
        fingerprint inputs (gas, txs), cache still bounded."""
        _, faulted = _soak(
            pipeline=True, scenario="redo-storm", executor="parallelevm"
        )
        _, baseline = _soak(executor="serial")
        assert (
            faulted.summary["throughput"]["gas"]
            == baseline.summary["throughput"]["gas"]
        )
        assert (
            faulted.summary["throughput"]["txs"]
            == baseline.summary["throughput"]["txs"]
        )
        assert faulted.cache_bounded

    def test_chaos_service_state_matches_serial(self):
        from repro.resilience import SCENARIOS, FaultPlan, RecoveryPolicy

        scenario = SCENARIOS["redo-storm"]

        def factory(number):
            return FaultPlan(
                f"pipe:{number}",
                config=scenario.config,
                recovery=RecoveryPolicy(),
            )

        spec = StreamSpec(accounts=400, txs_per_block=8, seed=11)
        chain = build_stream_chain(spec, cache_capacity=100_000)
        executor = EXECUTOR_FACTORIES["parallelevm"](4, None)
        executor.durability = DurableCommitPipeline()
        service = ChainService(
            BlockStream(chain),
            executor,
            fault_plan_factory=factory,
            pipeline=PipelineCoordinator(PipelineConfig()),
        )
        for _ in service.run(12):
            pass
        _, serial_chain = _service_run("serial", None)
        assert chain.world.fingerprint() == serial_chain.world.fingerprint()


class TestPipelineGain:
    def _default_stream(self, pipeline_config, trace=None):
        """parallelevm over the default soak stream, durability attached."""
        service, _ = _service_run(
            "parallelevm",
            pipeline_config,
            blocks=30,
            durable=True,
            trace=trace,
            accounts=20_000,
            txs_per_block=40,
            seed=1,
        )
        return service

    def test_improves_at_least_15_percent_over_synchronous(self):
        sync = self._default_stream(None)
        pipe = self._default_stream(PipelineConfig())
        assert pipe.sim_time_us <= 0.85 * sync.sim_time_us, (
            pipe.sim_time_us,
            sync.sim_time_us,
        )

    def test_commit_lane_blame_shrinks_under_async_commit(self):
        """The critical-path profiler attributes less of the service time
        to the commit lane once commits overlap execution."""
        blames = {}
        for label, config in (
            ("sync", PipelineConfig(async_commit=False)),
            ("async", PipelineConfig()),
        ):
            trace = TraceRecorder()
            service = self._default_stream(config, trace=trace)
            coordinator = service.pipeline
            report = critical_path(trace, coordinator.clock_us)
            share = (
                report.phase_blame_us().get("commit-lane", 0.0)
                / coordinator.clock_us
            )
            blames[label] = share
        assert blames["sync"] > 0.0
        assert blames["async"] < 0.5 * blames["sync"], blames

    def test_both_stages_contribute(self):
        sync = self._default_stream(None)
        prefetch_only = self._default_stream(PipelineConfig(async_commit=False))
        commit_only = self._default_stream(PipelineConfig(prefetch=False))
        assert prefetch_only.sim_time_us < sync.sim_time_us
        assert commit_only.sim_time_us < sync.sim_time_us


class TestFaultPlanRecoveryRestore:
    def test_plan_less_blocks_restore_constructor_recovery(self):
        """Regression: a factory returning None for a block used to clobber
        the executor's constructor-supplied recovery policy with None."""
        from repro.resilience import RecoveryPolicy

        policy = RecoveryPolicy(redo_budget=7)
        spec = StreamSpec(accounts=64, txs_per_block=4, seed=3)
        chain = build_stream_chain(spec, cache_capacity=10_000)
        executor = EXECUTOR_FACTORIES["parallelevm"](2, None)
        executor.recovery = policy

        plans = {}

        def factory(number):
            plans[number] = number % 2 == 0
            if number % 2 == 0:
                from repro.resilience import FaultPlan

                return FaultPlan(f"r:{number}", recovery=RecoveryPolicy())
            return None

        service = ChainService(
            BlockStream(chain), executor, fault_plan_factory=factory
        )
        for outcome in service.run(4):
            if not plans[outcome.number]:
                assert executor.recovery is policy, outcome.number
        assert executor.recovery is policy
