"""The serving stack end to end: overload scenarios, conservation,
determinism, and external block validation (ISSUE 8).

The four catalogue ingress scenarios run here exactly as ``repro chaos``
runs them; each must complete with graceful shedding — no admitted
transaction lost or double-committed, every shed and rejection typed, the
committed state serial-equivalent — while its intended overload mechanism
demonstrably fires.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import EXECUTOR_FACTORIES
from repro.check import run_chaos_block, run_ingress_scenario
from repro.errors import DuplicateTransaction, NonMonotonicBlock
from repro.evm.message import Transaction
from repro.mempool import MempoolConfig
from repro.resilience import SCENARIOS
from repro.rpc import IngressConfig, run_ingress
from repro.service import ChainService
from repro.workloads import Block, ChainSpec, build_chain


def small_config(**overrides) -> IngressConfig:
    base = dict(
        blocks=10, txs_per_block=10, accounts=96, clients=5, threads=4,
        seed=3, window_blocks=4,
    )
    base.update(overrides)
    return IngressConfig(**base)


class TestIngressHarness:
    def test_sustainable_load_certifies(self):
        report = run_ingress(small_config())
        assert report.ok, report.divergences
        assert report.blocks_committed > 0
        assert report.committed > 0
        assert report.admitted == report.committed + report.pending
        # Metrics reconcile with the report's own accounting.
        assert report.counters["rpc_admitted_total"] == report.admitted
        assert report.counters["rpc_txs_committed_total"] == report.committed

    def test_same_seed_is_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        reports = [
            run_ingress(small_config(), out=str(path)) for path in paths
        ]
        blobs = [path.read_bytes() for path in paths]
        assert blobs[0] and blobs[0] == blobs[1]
        assert reports[0].as_dict() == reports[1].as_dict()

    def test_different_seed_changes_the_traffic(self, tmp_path):
        a = run_ingress(small_config(seed=3))
        b = run_ingress(small_config(seed=4))
        assert a.requests != b.requests


class TestOverloadScenarios:
    def run(self, name: str):
        report = run_chaos_block(
            None, None, SCENARIOS[name], seed=1, threads=4
        )
        assert report.ok, report.describe()
        return report

    def test_traffic_spike_sheds_gracefully(self):
        report = self.run("traffic-spike")
        assert report.counters["backpressure"] > 0
        assert report.counters["retries"] > 0
        assert report.counters["admitted"] > 0
        assert report.faults_injected > 0

    def test_slow_consumer_opens_the_circuit(self):
        report = self.run("slow-consumer")
        assert report.counters["circuit_opened"] >= 1
        assert report.counters["reads_shed"] > 0
        assert report.counters["shed"] > 0  # TTL shedding bounded the queue

    def test_malformed_storm_bounces_with_typed_reasons(self):
        report = run_ingress_scenario(SCENARIOS["malformed-storm"], seed=1, threads=4)
        assert report.ok, report.describe()
        assert report.counters["rejected"] > 0
        assert report.counters["admitted"] > 0  # the well-formed half flows

    def test_nonce_gap_flood_is_contained(self):
        scenario = SCENARIOS["nonce-gap-flood"]
        report = run_ingress_scenario(scenario, seed=1, threads=4)
        assert report.ok, report.describe()
        assert report.counters["rejected"] > 0
        assert report.counters["pending"] <= MempoolConfig().capacity


class TestExternalBlockValidation:
    def service(self):
        chain = build_chain(ChainSpec(accounts=12, tokens=1, amm_pairs=0, seed=2))
        executor = EXECUTOR_FACTORIES["serial"](1, None)
        return chain, ChainService(None, executor, chain=chain)

    def transfer(self, chain, sender_index=0, nonce=0, value=500):
        return Transaction(
            sender=chain.accounts[sender_index],
            to=chain.accounts[-1],
            value=value,
            data=b"",
            gas_limit=21_000,
            gas_price=3,
            nonce=nonce,
        )

    def test_non_monotonic_number_is_rejected(self):
        chain, service = self.service()
        block = Block(
            number=service.height + 1, txs=[self.transfer(chain)], env=chain.env
        )
        with pytest.raises(NonMonotonicBlock):
            service.ingest_block(block)
        assert service.blocks_committed == 0

    def test_duplicate_hash_within_a_block_is_rejected(self):
        chain, service = self.service()
        tx = self.transfer(chain)
        block = Block(number=service.height, txs=[tx, tx], env=chain.env)
        with pytest.raises(DuplicateTransaction):
            service.ingest_block(block)
        assert service.blocks_committed == 0

    def test_replayed_hash_across_recent_blocks_is_rejected(self):
        chain, service = self.service()
        first = Block(
            number=service.height, txs=[self.transfer(chain)], env=chain.env
        )
        service.ingest_block(first)
        replay = Block(
            number=service.height, txs=[self.transfer(chain)], env=chain.env
        )
        with pytest.raises(DuplicateTransaction):
            service.ingest_block(replay)
        # A different transaction at the next height is accepted.
        follow = Block(
            number=service.height,
            txs=[self.transfer(chain, nonce=1)],
            env=chain.env,
        )
        outcome = service.ingest_block(follow)
        assert outcome.tx_count == 1
        assert service.blocks_committed == 2
