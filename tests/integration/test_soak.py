"""The soak harness end to end: determinism, boundedness, integration.

These runs are deliberately tiny (hundreds of txs, small universes) — the
properties under test are structural, not statistical: byte-identical
JSONL under a fixed seed, a valid empty report at zero length, bounded
state-cache occupancy, and resilience/durability counters landing in the
windowed snapshots.
"""

from __future__ import annotations

import io
import json

from repro.service import SoakConfig, run_soak

SMALL = dict(
    blocks=20,
    window_blocks=5,
    accounts=400,
    txs_per_block=8,
    seed=11,
    cache_capacity=20_000,
    threads=4,
)


def _soak(**overrides):
    buf = io.StringIO()
    config = SoakConfig(**{**SMALL, **overrides})
    report = run_soak(config, out=buf)
    return buf.getvalue(), report


class TestSoakDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        first, report_a = _soak()
        second, report_b = _soak()
        assert first == second
        assert first  # non-empty: the run emitted snapshots
        assert report_a.as_dict() == report_b.as_dict()

    def test_different_seed_different_stream(self):
        first, _ = _soak()
        second, _ = _soak(seed=12)
        assert first != second

    def test_snapshots_are_canonical_json_lines(self):
        out, report = _soak()
        lines = out.splitlines()
        assert len(lines) == report.snapshots == 4
        for index, line in enumerate(lines):
            snapshot = json.loads(line)
            assert line == json.dumps(snapshot, sort_keys=True)
            assert snapshot["schema"] == 1
            assert snapshot["window"] == index
            for section in ("throughput", "latency_tx_us", "latency_block_us",
                            "cumulative", "cache", "counters"):
                assert section in snapshot
            for stat in ("p50", "p90", "p99"):
                assert snapshot["latency_tx_us"][stat] is not None
                assert snapshot["latency_block_us"][stat] is not None
            assert snapshot["throughput"]["tx_per_s"] > 0


class TestZeroLengthSoak:
    def test_zero_blocks_is_a_valid_empty_report(self):
        out, report = _soak(blocks=0)
        assert out == ""
        assert report.blocks == 0
        assert report.snapshots == 0
        assert report.cache_bounded
        summary = report.summary
        assert summary["throughput"]["tx_per_s"] == 0.0
        assert summary["latency_tx_us"]["p50"] is None
        json.loads(report.to_json())  # serialises cleanly
        assert "soak:" in report.describe()


class TestSoakBoundedness:
    def test_cache_stays_within_capacity_on_two_executors(self):
        for executor in ("parallelevm", "block-stm"):
            out, report = _soak(executor=executor, cache_capacity=600)
            assert report.cache_bounded, executor
            last = json.loads(out.splitlines()[-1])
            assert last["cache"]["peak_entries"] <= 600
            assert last["cache"]["entries"] <= 600

    def test_partial_trailing_window_is_flushed(self):
        out, report = _soak(blocks=12, window_blocks=5)
        lines = [json.loads(line) for line in out.splitlines()]
        assert len(lines) == 3
        assert lines[-1]["throughput"]["blocks"] == 2
        assert report.summary["throughput"]["blocks"] == 12


class TestSoakIntegration:
    def test_resilience_counters_land_in_windows(self):
        out, report = _soak(scenario="redo-storm")
        windows_with_faults = [
            snap for snap in map(json.loads, out.splitlines())
            if any(k.startswith("resilience_") for k in snap["counters"])
        ]
        assert windows_with_faults
        assert report.counters.get("resilience_faults_injected", 0) > 0

    def test_durability_counters_land_in_windows(self, tmp_path):
        out, report = _soak(
            durable_dir=str(tmp_path / "wal"), checkpoint_interval=5
        )
        first = json.loads(out.splitlines()[0])
        assert first["counters"].get("durability_blocks_committed") == 5
        assert report.counters["durability_blocks_committed"] == SMALL["blocks"]
        # Durable commits cost simulated time, so block latency includes them.
        plain, _ = _soak()
        plain_first = json.loads(plain.splitlines()[0])
        assert (
            first["latency_block_us"]["p50"]
            > plain_first["latency_block_us"]["p50"]
        )

    def test_executors_agree_on_final_state(self):
        """Every executor config folds the same stream into the same world."""
        from repro.bench.suite import EXECUTOR_FACTORIES
        from repro.service import ChainService
        from repro.workloads import BlockStream, build_stream_chain

        config = SoakConfig(**SMALL)
        fingerprints = {}
        for name in sorted(EXECUTOR_FACTORIES):
            chain = build_stream_chain(
                config.spec(), cache_capacity=config.cache_capacity
            )
            executor = EXECUTOR_FACTORIES[name](2, None)
            service = ChainService(BlockStream(chain), executor)
            for _ in service.run(6):
                pass
            fingerprints[name] = chain.world.fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints
