"""End-to-end: benchmark-suite determinism and critical-path invariants.

The acceptance bar for the profiler is structural, not numeric: for every
executor configuration, on arbitrary (fuzzer-generated) blocks,

- the blame segments tile the makespan exactly (shares sum to the makespan
  within 1e-6 relative),
- the on-path work cannot exceed the makespan, and the makespan cannot
  exceed the schedule's total traced work (work-span sandwich),

and the benchmark documents the suite emits are byte-identical run to run,
which is what lets ``BENCH_*.json`` baselines live in git.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.suite import (
    EXECUTOR_FACTORIES,
    compare_bench,
    run_suite,
    to_json,
)
from repro.check import BlockFuzzer, FuzzConfig
from repro.obs import BlockObserver, collect_attribution, critical_path

THREADS = 4
REL_TOL = 1e-6


def blame_invariants(observer: BlockObserver, makespan_us: float, label: str):
    """The three structural critical-path invariants, asserted."""
    report = critical_path(observer.trace, makespan_us)
    scale = max(makespan_us, 1.0)
    # 1. Segments tile [0, makespan]: blame shares sum back exactly.
    blame_sum = sum(report.phase_blame_us().values())
    assert blame_sum == pytest.approx(makespan_us, rel=REL_TOL, abs=scale * REL_TOL), label
    tx_sum = sum(report.tx_blame_us().values())
    assert tx_sum == pytest.approx(makespan_us, rel=REL_TOL, abs=scale * REL_TOL), label
    # 2/3. Work-span sandwich: path work <= makespan <= total traced work.
    assert report.path_work_us <= makespan_us * (1 + REL_TOL), label
    assert makespan_us <= report.total_work_us * (1 + REL_TOL) + REL_TOL, label
    return report


class TestCriticalPathInvariants:
    @pytest.fixture(scope="class")
    def fuzz_blocks(self):
        fuzzer = BlockFuzzer(FuzzConfig(txs_per_block=24))
        return fuzzer.chain, [fuzzer.block(seed) for seed in (0, 3)]

    @pytest.mark.parametrize("name", sorted(EXECUTOR_FACTORIES))
    def test_invariants_hold_for_every_executor(self, fuzz_blocks, name):
        chain, blocks = fuzz_blocks
        for block in blocks:
            observer = BlockObserver()
            executor = EXECUTOR_FACTORIES[name](THREADS, observer)
            result = executor.execute_block(
                chain.fresh_world(), block.txs, block.env
            )
            blame_invariants(observer, result.makespan_us, f"{name}@{block.number}")


class TestAcceptanceBlock:
    """The 200-tx acceptance run: blame chain + named hot slots, every
    executor."""

    @pytest.fixture(scope="class")
    def big_block(self):
        fuzzer = BlockFuzzer(FuzzConfig(txs_per_block=200))
        return fuzzer.chain, fuzzer.block(1)

    @pytest.mark.parametrize("name", sorted(EXECUTOR_FACTORIES))
    def test_blame_chain_and_hot_slots(self, big_block, name):
        chain, block = big_block
        assert len(block.txs) >= 200
        observer = BlockObserver()
        executor = EXECUTOR_FACTORIES[name](THREADS, observer)
        result = executor.execute_block(chain.fresh_world(), block.txs, block.env)
        report = blame_invariants(observer, result.makespan_us, name)
        # Top-3 blamed transactions exist and are ranked.
        top = report.top_txs(3)
        assert len(top) == 3, name
        assert top[0][1] >= top[1][1] >= top[2][1], name
        # The contended executors name the hot slots they fought over.
        attribution = collect_attribution(observer.metrics)
        if name not in ("serial", "2pl"):
            assert attribution is not None, name
            hot = attribution.hot_slots(3)
            assert hot and all(slot.key for slot in hot), name
            assert all(slot.contract for slot in hot), name


class TestBenchSuite:
    @pytest.fixture(scope="class")
    def tiny_doc(self):
        return run_suite("tiny")

    def test_byte_identical_across_runs(self, tiny_doc):
        again = run_suite("tiny")
        assert to_json(tiny_doc) == to_json(again)

    def test_document_shape(self, tiny_doc):
        assert tiny_doc["schema_version"] == 1
        assert set(tiny_doc["sweeps"]) == {"threads", "contention", "block_size"}
        for sweep in tiny_doc["sweeps"].values():
            for point in sweep["points"]:
                assert set(point["executors"]) == set(EXECUTOR_FACTORIES)
                assert point["serial_us"] > 0
                assert "tx_level_speedup_bound" in point["analysis"]
                for entry in point["executors"].values():
                    assert entry["speedup"] > 0
                    assert "phase_time_shares" in entry
                    assert "critical_path" in entry
                    cp = entry["critical_path"]
                    assert cp["path_work_us"] + cp["stall_us"] == pytest.approx(
                        cp["makespan_us"], rel=REL_TOL
                    )

    def test_json_roundtrips(self, tiny_doc):
        assert json.loads(to_json(tiny_doc)) == tiny_doc

    def test_gate_passes_against_itself(self, tiny_doc):
        assert compare_bench(tiny_doc, copy.deepcopy(tiny_doc)) == []

    def test_gate_fails_on_injected_slowdown(self, tiny_doc):
        slow = copy.deepcopy(tiny_doc)
        point = slow["sweeps"]["threads"]["points"][0]
        point["executors"]["parallelevm"]["makespan_us"] *= 1.5
        problems = compare_bench(slow, tiny_doc, gate_pct=25.0)
        assert len(problems) == 1
        assert "parallelevm" in problems[0]
