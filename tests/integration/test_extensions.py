"""Extensions: the Saraph-Herlihy baseline and §7 operation-level schedules."""

from __future__ import annotations

import pytest

from repro import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    ParallelEVMExecutor,
    ScheduledValidatorExecutor,
    SerialExecutor,
    TwoPhaseExecutor,
    build_chain,
    propose_schedule,
)
from repro.workloads import conflict_ratio_block


@pytest.fixture(scope="module")
def setting():
    chain = build_chain(ChainSpec(tokens=4, amm_pairs=2, accounts=200))
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=80))
    block = wl.block(14_000_000)
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    return chain, block, serial


class TestTwoPhase:
    def test_state_matches_serial(self, setting):
        chain, block, serial = setting
        result = TwoPhaseExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.writes == serial.writes

    def test_counts_add_up(self, setting):
        chain, block, _ = setting
        result = TwoPhaseExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.stats["discarded"] + result.stats["survivors"] == len(
            block.txs
        )
        assert result.stats["discarded"] > 0  # hot-spot blocks always conflict

    def test_degrades_under_full_contention(self, setting):
        """The paper's critique: two-phase collapses on hot-spot blocks."""
        chain, _, _ = setting
        block = conflict_ratio_block(chain, 99, 60, ratio=1.0)
        serial = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        two_phase = TwoPhaseExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        parallel = ParallelEVMExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert two_phase.writes == serial.writes
        # All-but-one discarded, and ParallelEVM clearly ahead.
        assert two_phase.stats["discarded"] >= len(block.txs) - 5
        assert parallel.makespan_us < two_phase.makespan_us

    def test_conflict_free_block_keeps_everyone(self, setting):
        chain, _, _ = setting
        block = conflict_ratio_block(chain, 98, 40, ratio=0.0)
        result = TwoPhaseExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.stats["discarded"] == 0


class TestSchedules:
    @pytest.fixture(scope="class")
    def schedule(self, setting):
        chain, block, _ = setting
        schedule, proposer_result = propose_schedule(
            chain.fresh_world(), block.txs, block.env
        )
        return schedule, proposer_result

    def test_schedule_structure(self, setting, schedule):
        chain, block, _ = setting
        sched, _ = schedule
        assert len(sched.dependencies) == len(block.txs)
        # Dependencies always point backwards.
        for j, deps in enumerate(sched.dependencies):
            assert all(i < j for i in deps)
        assert 1 <= sched.critical_path_length <= len(block.txs)

    def test_dependency_validator_matches_serial(self, setting, schedule):
        chain, block, serial = setting
        sched, _ = schedule
        result = ScheduledValidatorExecutor(sched, threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.writes == serial.writes
        assert result.stats["fallbacks"] == 0

    def test_value_validator_matches_serial(self, setting, schedule):
        chain, block, serial = setting
        sched, _ = schedule
        result = ScheduledValidatorExecutor(
            sched, threads=8, use_read_values=True
        ).execute_block(chain.fresh_world(), block.txs, block.env)
        assert result.writes == serial.writes
        assert result.stats["fallbacks"] == 0

    def test_value_schedule_is_fastest(self, setting, schedule):
        chain, block, serial = setting
        sched, proposer_result = schedule
        value = ScheduledValidatorExecutor(
            sched, threads=16, use_read_values=True
        ).execute_block(chain.fresh_world(), block.txs, block.env)
        assert value.makespan_us < proposer_result.makespan_us

    def test_stale_schedule_falls_back_safely(self, setting, schedule):
        """A schedule computed for different pre-state must degrade to
        serial fallbacks, never to wrong state."""
        chain, block, serial = setting
        sched, _ = schedule
        world = chain.fresh_world()
        # Perturb a balance the block touches: shipped read values go stale.
        victim = block.txs[0].sender
        world.set_balance(victim, world.get_balance(victim) + 12345)
        reference = SerialExecutor().execute_block(
            world.clone(), block.txs, block.env
        )
        result = ScheduledValidatorExecutor(
            sched, threads=8, use_read_values=True
        ).execute_block(world, block.txs, block.env)
        assert result.writes == reference.writes
        assert result.stats["fallbacks"] > 0

    def test_wrong_sized_schedule_rejected(self, setting, schedule):
        chain, block, _ = setting
        sched, _ = schedule
        with pytest.raises(ValueError):
            ScheduledValidatorExecutor(sched, threads=8).execute_block(
                chain.fresh_world(), block.txs[:-1], block.env
            )
