"""Determinism of the whole pipeline and coarse speedup-shape assertions."""

from __future__ import annotations

import pytest

from repro.concurrency import (
    BlockSTMExecutor,
    OCCExecutor,
    SerialExecutor,
    TwoPLExecutor,
)
from repro.core.executor import ParallelEVMExecutor
from repro.workloads import ChainSpec, MainnetConfig, MainnetWorkload, build_chain


@pytest.fixture(scope="module")
def setting():
    chain = build_chain(ChainSpec(tokens=4, amm_pairs=2, accounts=200))
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=80))
    block = wl.block(14_000_000)
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    return chain, block, serial


@pytest.mark.parametrize(
    "executor_cls",
    [SerialExecutor, TwoPLExecutor, OCCExecutor, BlockSTMExecutor,
     ParallelEVMExecutor],
)
def test_makespans_are_deterministic(setting, executor_cls):
    chain, block, _ = setting
    r1 = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    r2 = executor_cls(threads=8).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert r1.makespan_us == r2.makespan_us
    assert r1.writes == r2.writes
    assert r1.stats == r2.stats


def test_speedup_ordering_matches_table1(setting):
    """The paper's headline shape: 1 < 2PL < OCC < Block-STM < ParallelEVM."""
    chain, block, serial = setting
    speedups = {}
    for cls in (TwoPLExecutor, OCCExecutor, BlockSTMExecutor, ParallelEVMExecutor):
        result = cls(threads=16).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        speedups[cls.name] = serial.makespan_us / result.makespan_us
    assert 1.0 <= speedups["2pl"] < speedups["occ"]
    assert speedups["occ"] < speedups["block-stm"]
    assert speedups["block-stm"] < speedups["parallelevm"]


def test_parallelevm_scales_with_threads(setting):
    chain, block, serial = setting
    makespans = []
    for threads in (1, 4, 16):
        result = ParallelEVMExecutor(threads=threads).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        makespans.append(result.makespan_us)
    assert makespans[0] > makespans[1] > makespans[2]


def test_single_thread_parallelevm_close_to_serial(setting):
    """With one thread, ParallelEVM pays tracking + validation on top of
    serial work: it must be within ~1.35x of serial, never faster."""
    chain, block, serial = setting
    result = ParallelEVMExecutor(threads=1).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    ratio = result.makespan_us / serial.makespan_us
    assert 1.0 <= ratio < 1.35


def test_occ_reexecutes_only_conflicting_txs(setting):
    chain, block, _ = setting
    result = OCCExecutor(threads=16).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert result.stats["executions"] == len(block.txs) + result.stats["aborts"]
