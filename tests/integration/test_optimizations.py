"""The §6.3 optimizations: prefetching (Table 2) and pre-execution."""

from __future__ import annotations

import pytest

from repro.bench.harness import block_touched_keys, prefetched_world
from repro.concurrency import SerialExecutor
from repro.core.executor import ParallelEVMExecutor
from repro.workloads import ChainSpec, MainnetConfig, MainnetWorkload, build_chain


@pytest.fixture(scope="module")
def setting():
    chain = build_chain(ChainSpec(tokens=4, amm_pairs=2, accounts=160))
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=60))
    block = wl.block(14_000_000)
    serial = SerialExecutor().execute_block(chain.fresh_world(), block.txs, block.env)
    return chain, block, serial


class TestPrefetching:
    def test_prefetched_serial_is_faster_and_identical(self, setting):
        chain, block, serial = setting
        world = prefetched_world(chain, block)
        warm = SerialExecutor().execute_block(world, block.txs, block.env)
        assert warm.writes == serial.writes
        assert warm.makespan_us < serial.makespan_us / 1.5

    def test_prefetched_parallelevm_beats_cold(self, setting):
        chain, block, serial = setting
        cold = ParallelEVMExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        warm = ParallelEVMExecutor(threads=8).execute_block(
            prefetched_world(chain, block), block.txs, block.env
        )
        assert warm.writes == serial.writes
        assert warm.makespan_us < cold.makespan_us

    def test_touched_keys_cover_all_writes(self, setting):
        chain, block, serial = setting
        keys = block_touched_keys(chain, block)
        coinbase_keys = {k for k in serial.writes if k[1] == block.env.coinbase}
        assert set(serial.writes) - coinbase_keys <= keys


class TestPreExecution:
    def test_preexecuted_state_matches_serial(self, setting):
        chain, block, serial = setting
        result = ParallelEVMExecutor(threads=8, preexecute=True).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert result.writes == serial.writes

    def test_preexecution_is_fastest_mode(self, setting):
        chain, block, serial = setting
        normal = ParallelEVMExecutor(threads=8).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        pre = ParallelEVMExecutor(threads=8, preexecute=True).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        assert pre.makespan_us < normal.makespan_us

    def test_stale_preexecutions_are_repaired_by_redo(self, setting):
        chain, block, serial = setting
        result = ParallelEVMExecutor(threads=8, preexecute=True).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        # Pre-execution against the pre-block state makes every
        # hot-spot-touching tx observe stale values: redo must fire.
        assert result.stats["redo_attempts"] > 0
        assert result.writes == serial.writes
