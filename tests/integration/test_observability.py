"""Observability end-to-end: determinism guard, stats/metrics agreement.

Two invariants protect the zero-cost-when-absent contract:

1. attaching an observer never changes any executor's makespan (the
   discrete-event machine emits spans from state it already computes);
2. the seed makespans themselves are pinned bit-for-bit, so instrumentation
   refactors cannot silently perturb the simulation.

The agreement tests cross-check independently maintained counters: the
scheduler's §6.4 stats dict versus the metric series the SSA tracer and
redo phase publish on their own.
"""

from __future__ import annotations

import json

import pytest

from repro import BlockObserver
from repro.bench.harness import executor_suite, standard_chain, standard_workload
from repro.concurrency import SerialExecutor, TwoPhaseExecutor
from repro.core.executor import ParallelEVMExecutor
from repro.workloads import conflict_ratio_block

THREADS = 4

# Pre-observability makespans of the standard block (accounts=60, 24 txs,
# block 14_000_000, 4 threads), captured at the seed commit.  These are
# exact floats: the simulation is deterministic, so any drift is a real
# behaviour change, not noise.
SEED_MAKESPANS_US = {
    "serial": 4505.839999999999,
    "2pl": 3787.8838507530872,
    "occ": 1576.7800000000002,
    "block-stm": 1610.5,
    "parallelevm": 1397.2199999999996,
}


@pytest.fixture(scope="module")
def fixture():
    chain = standard_chain(accounts=60)
    block = standard_workload(chain, 24).block(14_000_000)
    return chain, block


def _suite():
    return [SerialExecutor(threads=THREADS), *executor_suite(threads=THREADS)]


class TestDeterminismGuard:
    def test_unobserved_makespans_match_seed(self, fixture):
        chain, block = fixture
        for executor in _suite():
            result = executor.execute_block(
                chain.fresh_world(), block.txs, block.env
            )
            assert result.makespan_us == SEED_MAKESPANS_US[executor.name], (
                executor.name
            )

    def test_observer_is_timing_neutral(self, fixture):
        chain, block = fixture
        for executor in _suite():
            observed = type(executor)(threads=THREADS, observer=BlockObserver())
            result = observed.execute_block(
                chain.fresh_world(), block.txs, block.env
            )
            assert result.makespan_us == SEED_MAKESPANS_US[executor.name], (
                executor.name
            )

    def test_observer_neutral_for_two_phase(self, fixture):
        chain, block = fixture
        bare = TwoPhaseExecutor(threads=THREADS).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        observed = TwoPhaseExecutor(
            threads=THREADS, observer=BlockObserver()
        ).execute_block(chain.fresh_world(), block.txs, block.env)
        assert observed.makespan_us == bare.makespan_us

    def test_trace_byte_identical_across_runs(self, fixture):
        chain, block = fixture

        def one_trace() -> str:
            obs = BlockObserver()
            ParallelEVMExecutor(threads=THREADS, observer=obs).execute_block(
                chain.fresh_world(), block.txs, block.env
            )
            return obs.trace.to_chrome_json()

        assert one_trace() == one_trace()


class TestStatsMetricsAgreement:
    @pytest.fixture(scope="class")
    def contended_run(self):
        """ParallelEVM on an ERC-20 block where 60% of txs share one balance."""
        chain = standard_chain(accounts=80)
        block = conflict_ratio_block(chain, 14_000_000, 30, ratio=0.6, seed=7)
        obs = BlockObserver()
        result = ParallelEVMExecutor(threads=THREADS, observer=obs).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        return result, obs

    def test_block_actually_contends(self, contended_run):
        result, _ = contended_run
        assert result.stats["conflicting_txs"] > 0
        assert result.stats["redo_attempts"] > 0

    def test_redo_counters_agree(self, contended_run):
        result, obs = contended_run
        m = obs.metrics
        assert m.value("redo_success_total") == result.stats["redo_successes"]
        assert (m.value("redo_failure_total") or 0) == result.stats["redo_failures"]
        attempts = (m.value("redo_success_total") or 0) + (
            m.value("redo_failure_total") or 0
        )
        assert attempts == result.stats["redo_attempts"]
        assert (
            m.value("redo_entries_reexecuted_total")
            == result.stats["redo_entries_total"]
        )
        assert m.value("redo_slice_entries")["count"] == result.stats["redo_attempts"]

    def test_ssa_log_counters_agree(self, contended_run):
        """The tracer counts entries as it appends; the scheduler sums
        len(log) per execution.  Both must see the same total."""
        result, obs = contended_run
        assert (
            obs.metrics.value("ssa_log_entries_total")
            == result.stats["log_entries_total"]
        )

    def test_task_counts_match_spans(self, contended_run):
        result, obs = contended_run
        m = obs.metrics
        assert m.value("tasks_total", phase="execute") == result.stats["executions"]
        assert m.value("tasks_total", phase="redo") == result.stats["redo_attempts"]
        # one validation per commit attempt: every tx validates once, plus
        # one more validation after each full abort's re-execution.
        assert (
            m.value("tasks_total", phase="validate")
            == len(result.tx_results) + result.stats["full_aborts"]
        )
        assert len(obs.trace.spans) == sum(
            m.labelled_values("tasks_total").values()
        )

    def test_stats_gauges_mirror_stats_dict(self, contended_run):
        result, obs = contended_run
        for key, value in result.stats.items():
            assert obs.metrics.value(f"stats_{key}") == value

    def test_conflict_heatmap_covers_conflicting_txs(self, contended_run):
        result, obs = contended_run
        conflicts = obs.metrics.labelled_values("conflict_keys")
        assert conflicts, "contended block must record conflicting keys"
        assert sum(conflicts.values()) >= result.stats["conflicting_txs"]


class TestExportedArtifacts:
    def test_phase_time_sums_to_busy_time(self, fixture):
        chain, block = fixture
        obs = BlockObserver()
        result = ParallelEVMExecutor(threads=THREADS, observer=obs).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        busy = obs.trace.busy_us()
        assert obs.metrics.sum_by_name("phase_time_us") == pytest.approx(
            busy, rel=1e-9
        )
        # Busy time is bounded by the machine's capacity over the makespan.
        assert busy <= result.makespan_us * THREADS + 1e-6

    def test_chrome_trace_valid_and_complete(self, fixture, tmp_path):
        chain, block = fixture
        obs = BlockObserver()
        ParallelEVMExecutor(threads=THREADS, observer=obs).execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        path = tmp_path / "trace.json"
        obs.trace.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(obs.trace.spans)
        for event in complete:
            assert event["dur"] >= 0
            assert isinstance(event["tid"], int)
