"""§6.2 correctness validation: MPT state-root equality after each block.

The paper replays mainnet blocks and compares MPT roots against Ethereum's;
the equivalent invariant here is root equality between every concurrent
executor's post-block state and the serial executor's.
"""

from __future__ import annotations

import pytest

from repro.concurrency import (
    BlockSTMExecutor,
    OCCExecutor,
    SerialExecutor,
    TwoPLExecutor,
)
from repro.core.executor import ParallelEVMExecutor
from repro.workloads import ChainSpec, MainnetConfig, MainnetWorkload, build_chain


@pytest.fixture(scope="module")
def setting():
    chain = build_chain(ChainSpec(tokens=2, amm_pairs=1, accounts=60))
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=25))
    return chain, wl.block(14_000_000)


@pytest.fixture(scope="module")
def serial_root(setting):
    chain, block = setting
    world = chain.fresh_world()
    result = SerialExecutor().execute_block(world, block.txs, block.env)
    world.apply(result.writes)
    return world.state_root()


@pytest.mark.parametrize(
    "executor_cls",
    [TwoPLExecutor, OCCExecutor, BlockSTMExecutor, ParallelEVMExecutor],
)
def test_post_block_state_root_matches_serial(setting, serial_root, executor_cls):
    chain, block = setting
    world = chain.fresh_world()
    result = executor_cls(threads=8).execute_block(world, block.txs, block.env)
    world.apply(result.writes)
    assert world.state_root() == serial_root


def test_root_actually_covers_the_block(setting, serial_root):
    """Sanity: the pre-block root differs (the check has teeth)."""
    chain, _ = setting
    assert chain.fresh_world().state_root() != serial_root


def test_root_changes_across_consecutive_blocks(setting):
    chain, _ = setting
    wl = MainnetWorkload(chain, MainnetConfig(txs_per_block=15))
    world = chain.fresh_world()
    roots = []
    for number in range(14_000_001, 14_000_004):
        block = wl.block(number)
        result = SerialExecutor().execute_block(world, block.txs, block.env)
        world.apply(result.writes)
        roots.append(world.state_root())
    assert len(set(roots)) == 3
