"""Property: serializability of every executor over randomized blocks.

Random ERC20/native blocks with random hot-spot structure; every
concurrency-control executor must reproduce the serial final state
(Theorem 1), for any thread count.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import (
    BlockSTMExecutor,
    OCCExecutor,
    SerialExecutor,
    TwoPhaseExecutor,
    TwoPLExecutor,
)
from repro.contracts import encode_call
from repro.core.executor import ParallelEVMExecutor
from repro.evm.message import Transaction
from repro.workloads import ChainSpec, build_chain
from repro.workloads.block import Block

_CHAIN = build_chain(ChainSpec(tokens=2, amm_pairs=1, accounts=40))


def random_block(seed: int, tx_count: int, hotness: float) -> Block:
    """A block mixing transfers/approvals/natives with tunable hot-spotting."""
    rng = random.Random(seed)
    chain = _CHAIN
    accounts = chain.accounts
    token = chain.tokens[0]
    hot = accounts[0]
    txs = []
    for _ in range(tx_count):
        sender = rng.choice(accounts[1:])
        target = hot if rng.random() < hotness else rng.choice(accounts)
        roll = rng.random()
        if roll < 0.5:
            data = encode_call(
                "transfer(address,uint256)", target, rng.randrange(1, 50)
            )
            txs.append(
                Transaction(sender=sender, to=token, data=data, gas_limit=300_000)
            )
        elif roll < 0.7:
            data = encode_call(
                "approve(address,uint256)", target, rng.randrange(1, 10**9)
            )
            txs.append(
                Transaction(sender=sender, to=token, data=data, gas_limit=300_000)
            )
        else:
            txs.append(
                Transaction(
                    sender=sender,
                    to=target,
                    value=rng.randrange(1, 10**6),
                    gas_limit=21_000,
                )
            )
    return Block(number=seed, txs=txs, env=chain.env)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    tx_count=st.integers(2, 30),
    hotness=st.floats(0.0, 1.0),
    threads=st.integers(1, 16),
)
def test_every_executor_is_serializable(seed, tx_count, hotness, threads):
    block = random_block(seed, tx_count, hotness)
    serial = SerialExecutor().execute_block(
        _CHAIN.fresh_world(), block.txs, block.env
    )
    for cls in (TwoPLExecutor, OCCExecutor, BlockSTMExecutor,
                TwoPhaseExecutor, ParallelEVMExecutor):
        result = cls(threads=threads).execute_block(
            _CHAIN.fresh_world(), block.txs, block.env
        )
        assert result.writes == serial.writes, cls.name
        assert result.gas_used == serial.gas_used, cls.name


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), tx_count=st.integers(2, 25))
def test_maximum_contention_block_is_serializable(seed, tx_count):
    """Everyone pays the same hot recipient: worst case for every scheme."""
    block = random_block(seed, tx_count, hotness=1.0)
    serial = SerialExecutor().execute_block(
        _CHAIN.fresh_world(), block.txs, block.env
    )
    result = ParallelEVMExecutor(threads=8).execute_block(
        _CHAIN.fresh_world(), block.txs, block.env
    )
    assert result.writes == serial.writes
