"""Property tests: arbitrary journal damage never yields a wrong state.

The contract under test (ISSUE 5, satellite c): seed-driven byte flips and
truncations of the write-ahead journal must lead recovery to either

- a state fingerprint from the *certified prefix* — genesis or some
  committed block's post-state, exactly as a prefix replay produces — or
- a typed :class:`JournalCorruptionError` under the ``"raise"`` policy,

and never to a root that differs from every certified prefix state.  CRC32
catches all single-byte damage, so under the default ``"truncate"`` policy
recovery must *never* raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings, strategies as st

from repro.durability import DurableCommitPipeline, MemoryMedium, recover
from repro.errors import JournalCorruptionError
from repro.primitives import make_address
from repro.resilience.policy import RecoveryPolicy
from repro.state.keys import balance_key, storage_key
from repro.state.world import WorldState


@dataclass
class FakeTx:
    tx_index: int


@dataclass
class FakeTxResult:
    tx: FakeTx
    write_set: dict


@dataclass
class FakeBlockResult:
    writes: dict
    tx_results: list = field(default_factory=list)


def _result(*tx_writes: dict) -> FakeBlockResult:
    merged: dict = {}
    tx_results = []
    for index, writes in enumerate(tx_writes):
        merged.update(writes)
        tx_results.append(FakeTxResult(FakeTx(index), dict(writes)))
    return FakeBlockResult(merged, tx_results)


def _keys(i: int):
    return balance_key(make_address(30_000 + i)), storage_key(make_address(77), i)


def build_journal(checkpoint_interval: int = 0):
    """Three committed blocks on a fresh medium.

    Returns ``(medium, certified)`` where ``certified`` is the set of
    fingerprints recovery is allowed to land on (genesis plus each
    committed block's post-state).
    """
    medium = MemoryMedium()
    pipeline = DurableCommitPipeline(medium, checkpoint_interval=checkpoint_interval)
    world = WorldState()
    certified = {world.fingerprint()}
    for number in (1, 2, 3):
        b, s = _keys(number)
        b2, _ = _keys(number + 10)
        result = _result({b: 100 * number, s: number}, {b2: 7 * number})
        pipeline.commit(world, number, result)
        certified.add(world.fingerprint())
    return medium, certified


FLIPS = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # position (mod journal size)
    st.integers(min_value=1, max_value=255),  # xor mask (never a no-op)
)


class TestByteFlips:
    @settings(max_examples=150, deadline=None)
    @given(flip=FLIPS, checkpointed=st.booleans())
    def test_truncate_policy_lands_on_a_certified_prefix(self, flip, checkpointed):
        medium, certified = build_journal(2 if checkpointed else 0)
        raw = bytearray(medium.read_journal())
        position, mask = flip
        raw[position % len(raw)] ^= mask
        medium.reset_journal(bytes(raw))

        result = recover(medium, WorldState)  # must not raise
        assert result.world.fingerprint() in certified
        # Recovery repairs the journal in place: a second pass is clean
        # and deterministic.
        again = recover(medium, WorldState)
        assert again.world.fingerprint() == result.world.fingerprint()
        assert again.truncated_bytes == 0
        assert not again.corrupt_truncated

    @settings(max_examples=150, deadline=None)
    @given(flip=FLIPS)
    def test_raise_policy_raises_or_lands_on_a_certified_prefix(self, flip):
        medium, certified = build_journal()
        raw = bytearray(medium.read_journal())
        position, mask = flip
        raw[position % len(raw)] ^= mask
        medium.reset_journal(bytes(raw))

        try:
            result = recover(
                medium,
                WorldState,
                policy=RecoveryPolicy(corrupt_tail_policy="raise"),
            )
        except JournalCorruptionError:
            return  # the typed error is the other legal outcome
        assert result.world.fingerprint() in certified


class TestTruncations:
    @settings(max_examples=150, deadline=None)
    @given(length=st.integers(min_value=0, max_value=10_000), checkpointed=st.booleans())
    def test_any_truncation_lands_on_a_certified_prefix(self, length, checkpointed):
        medium, certified = build_journal(2 if checkpointed else 0)
        size = medium.journal_size()
        medium.truncate_journal(length % (size + 1))

        result = recover(medium, WorldState)  # truncation is never fatal
        assert result.world.fingerprint() in certified
        again = recover(medium, WorldState)
        assert again.world.fingerprint() == result.world.fingerprint()
        assert again.truncated_bytes == 0
