"""Property: the redo phase is equivalent to full re-execution (Lemma 2).

For arbitrary transactions and arbitrary injected conflicts, whenever the
redo phase succeeds its corrected write set, gas, and logs must be exactly
those of a from-scratch execution against the post-conflict committed
state.  When it declines (a constraint guard fired) that is always sound —
the executor falls back to full re-execution — so no assertion is made
beyond the success cases, but we do check that guard-declines correlate
with actual behavioural divergence.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import allowance_slot, balance_slot, encode_call
from repro.core.redo import redo
from repro.core.tracer import SSATracer
from repro.evm.interpreter import execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.primitives import make_address
from repro.sim.meter import CostMeter
from repro.state import StateView, WorldState
from repro.state.keys import storage_key

TOKEN = make_address(1)
USERS = [make_address(100 + i) for i in range(4)]
ENV = BlockEnv()
ETHER = 10**18


def build_world(balances: list[int], allowances: list[int]) -> WorldState:
    from repro.contracts import ERC20

    world = WorldState()
    world.set_code(TOKEN, ERC20)
    for user, balance in zip(USERS, balances):
        world.set_storage(TOKEN, balance_slot(user), balance)
        world.set_balance(user, 10 * ETHER)
    for i, (owner, spender) in enumerate(
        [(a, b) for a in USERS for b in USERS if a != b]
    ):
        world.set_storage(
            TOKEN, allowance_slot(owner, spender), allowances[i % len(allowances)]
        )
    return world


def execute(world: WorldState, tx: Transaction, tracer=None):
    meter = CostMeter()
    view = StateView(world, meter=meter)
    return execute_transaction(view, tx, ENV, tracer=tracer, meter=meter)


transactions = st.one_of(
    # transfer(to, amount)
    st.tuples(
        st.just("transfer"),
        st.integers(0, 3),  # sender
        st.integers(0, 3),  # recipient
        st.integers(1, 1500),  # amount straddles typical balances
    ),
    # transferFrom(owner, to, amount)
    st.tuples(
        st.just("transferFrom"),
        st.integers(0, 3),
        st.integers(0, 3),
        st.integers(1, 900),
    ),
)


@settings(max_examples=120, deadline=None)
@given(
    tx_spec=transactions,
    balances=st.lists(st.integers(0, 2000), min_size=4, max_size=4),
    allowances=st.lists(st.integers(0, 1200), min_size=3, max_size=3),
    conflict_user=st.integers(0, 3),
    conflict_value=st.integers(0, 2500),
)
def test_redo_equals_full_reexecution(
    tx_spec, balances, allowances, conflict_user, conflict_value
):
    kind, a, b, amount = tx_spec
    sender = USERS[a]
    if kind == "transfer":
        tx = Transaction(
            sender=sender,
            to=TOKEN,
            data=encode_call("transfer(address,uint256)", USERS[b], amount),
            gas_limit=300_000,
        )
    else:
        owner = USERS[(a + 1) % 4]
        tx = Transaction(
            sender=sender,
            to=TOKEN,
            data=encode_call(
                "transferFrom(address,address,uint256)", owner, USERS[b], amount
            ),
            gas_limit=300_000,
        )

    world = build_world(balances, allowances)
    tracer = SSATracer()
    original = execute(world, tx, tracer=tracer)

    conflict_key = storage_key(TOKEN, balance_slot(USERS[conflict_user]))
    conflicts = {conflict_key: conflict_value}
    # Only meaningful when the tx actually read that key with another value.
    observed = original.read_set.get(conflict_key)
    if observed is None or observed == conflict_value:
        return

    outcome = redo(tracer.log, dict(conflicts))

    reference_world = build_world(balances, allowances)
    reference_world.apply(conflicts)
    reference = execute(reference_world, tx)

    if not original.success or not reference.success:
        # Reverted executions are declared non-redoable; verify that.
        if not original.success:
            assert not outcome.success
        return

    if outcome.success:
        merged = dict(original.write_set)
        merged.update(outcome.updated_writes)
        assert merged == reference.write_set
        assert original.gas_used == reference.gas_used
        assert [
            (l.address, l.topics, l.data) for l in original.logs
        ] == [(l.address, l.topics, l.data) for l in reference.logs]
    else:
        # A guard fired.  Soundness: that must coincide with an actual
        # behavioural change — different control flow (success flip),
        # different gas pricing, or a violated solvency constraint; the
        # reference run differing from a naive slice-patch is exactly why
        # the redo had to decline.  We assert the decline is not spurious:
        # the reference run must differ from the original in more than the
        # conflicting chain's values (success flag or gas).
        assert (
            reference.gas_used != original.gas_used
            or not reference.success
        )
