"""Property tests for the SSA-log wire format over synthetic entries."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import decode_entry, decode_log, encode_entry, encode_log
from repro.core.ssa_log import LogEntry, PseudoOp, SSAOperationLog
from repro.evm.opcodes import Op
from repro import rlp

words = st.integers(min_value=0, max_value=2**256 - 1)
small = st.integers(min_value=0, max_value=200)
maybe_lsn = st.one_of(st.none(), small)

state_keys = st.one_of(
    st.tuples(st.just("b"), st.binary(min_size=20, max_size=20)),
    st.tuples(st.just("n"), st.binary(min_size=20, max_size=20)),
    st.tuples(st.just("s"), st.binary(min_size=20, max_size=20), words),
)

operand_values = st.one_of(words, st.binary(max_size=64))

entries = st.builds(
    LogEntry,
    lsn=st.just(0),  # re-assigned below to keep logs sequential
    opcode=st.sampled_from(
        [Op.ADD, Op.SUB, Op.SLOAD, Op.SSTORE, Op.MLOAD, Op.SHA3,
         PseudoOp.ASSERT_EQ, PseudoOp.GUARD_GE, PseudoOp.IADD,
         PseudoOp.ILOAD, PseudoOp.ISTORE]
    ),
    operands=st.lists(operand_values, max_size=3).map(tuple),
    result=st.one_of(st.none(), words, st.binary(max_size=32)),
    def_stack=st.lists(maybe_lsn, max_size=3).map(tuple),
    def_storage=maybe_lsn,
    def_memory=st.lists(
        st.tuples(small, small, small, small), max_size=3
    ).map(tuple),
    key=st.one_of(st.none(), state_keys),
    gas_cost=st.integers(min_value=0, max_value=100_000),
    gas_dynamic=st.booleans(),
    meta=st.one_of(
        st.none(),
        st.fixed_dictionaries({"current": words, "cold": st.booleans()}),
    ),
)


@settings(max_examples=150, deadline=None)
@given(entries)
def test_entry_roundtrip(entry):
    copy = decode_entry(rlp.decode(rlp.encode(encode_entry(entry))))
    assert copy == entry


@settings(max_examples=60, deadline=None)
@given(st.lists(entries, max_size=12), st.booleans())
def test_log_roundtrip_and_rebuilt_indexes(entry_list, redoable):
    log = SSAOperationLog()
    for i, entry in enumerate(entry_list):
        entry.lsn = i
        # def references must point strictly backwards to stay well-formed.
        entry.def_stack = tuple(
            d if d is not None and d < i else None for d in entry.def_stack
        )
        entry.def_storage = (
            entry.def_storage
            if entry.def_storage is not None and entry.def_storage < i
            else None
        )
        entry.def_memory = tuple(
            (a, b, lsn, c)
            for a, b, lsn, c in entry.def_memory
            if lsn < i
        )
        log.append(entry)
        if entry.opcode in (Op.SLOAD, PseudoOp.ILOAD) and entry.key is not None:
            log.record_load(entry)
        elif entry.opcode in (Op.SSTORE, PseudoOp.ISTORE) and entry.key is not None:
            log.record_store(entry)
    log.redoable = redoable

    rebuilt = decode_log(encode_log(log))
    assert [e for e in rebuilt.entries] == [e for e in log.entries]
    assert rebuilt.redoable == log.redoable
    assert rebuilt.uses == log.uses
    # Tracking maps may differ only for keyless load/store entries, which the
    # generator above never registers; decode registers by opcode+key.
    for key, lsns in log.latest_writes.items():
        assert rebuilt.latest_writes.get(key) == lsns
