"""Property tests: any shipped-journal prefix lands a replica safely.

The contract under test (ISSUE 10, satellite 3): a replica replaying an
arbitrary prefix of the primary's shipped journal frames — including torn
tails from a mid-write crash and single-byte transport damage — must end
on a *certified prefix* state (genesis or some committed block's
post-state, exactly what a prefix replay of the primary's own journal
produces) or quarantine with a typed error.  It must never hold a state
fingerprint that differs from every certified prefix — silent divergence
is the one forbidden outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings, strategies as st

from repro.durability import DurableCommitPipeline, MemoryMedium
from repro.durability.checkpoint import encode_snapshot
from repro.errors import JournalCorruptionError, ReplicationError
from repro.primitives import make_address
from repro.replication import ReplicaService, ShipFeed, ShippingMedium
from repro.state.keys import balance_key, storage_key
from repro.state.world import WorldState


@dataclass
class FakeTx:
    tx_index: int


@dataclass
class FakeTxResult:
    tx: FakeTx
    write_set: dict


@dataclass
class FakeBlockResult:
    writes: dict
    tx_results: list = field(default_factory=list)


def _result(*tx_writes: dict) -> FakeBlockResult:
    merged: dict = {}
    tx_results = []
    for index, writes in enumerate(tx_writes):
        merged.update(writes)
        tx_results.append(FakeTxResult(FakeTx(index), dict(writes)))
    return FakeBlockResult(merged, tx_results)


def _keys(i: int):
    return balance_key(make_address(40_000 + i)), storage_key(make_address(88), i)


def build_feed(checkpoint_interval: int = 0):
    """Three committed blocks shipped onto a feed, plus the certified set."""
    feed = ShipFeed(epoch=1)
    world = WorldState()
    feed.ship_snapshot(0, encode_snapshot(world, 0))
    pipeline = DurableCommitPipeline(
        ShippingMedium(MemoryMedium(), feed),
        checkpoint_interval=checkpoint_interval,
        epoch=1,
    )
    certified = {world.fingerprint()}
    for number in (1, 2, 3):
        b, s = _keys(number)
        b2, _ = _keys(number + 10)
        result = _result({b: 100 * number, s: number}, {b2: 7 * number})
        pipeline.commit(world, number, result)
        certified.add(world.fingerprint())
    return feed, certified


def _prefix_feed(feed: ShipFeed, length: int) -> ShipFeed:
    """A copy of ``feed`` truncated to ``length`` journal bytes."""
    clone = ShipFeed(epoch=feed.epoch)
    clone.snapshots = list(feed.snapshots)
    clone.append(feed.read_from(0)[:length])
    return clone


FLIPS = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # position (mod feed size)
    st.integers(min_value=1, max_value=255),  # xor mask (never a no-op)
)


class TestPrefixReplay:
    @settings(max_examples=150, deadline=None)
    @given(
        length=st.integers(min_value=0, max_value=10_000),
        checkpointed=st.booleans(),
    )
    def test_any_prefix_lands_on_a_certified_ancestor(self, length, checkpointed):
        feed, certified = build_feed(2 if checkpointed else 0)
        prefix = _prefix_feed(feed, length % (len(feed) + 1))
        replica = ReplicaService("replica-0", prefix)
        replica.poll()  # a torn tail is an incomplete frame: wait, not raise
        assert replica.world.fingerprint() in certified
        # The prefix is a deterministic function of its bytes: a second
        # replica over the same prefix lands on the identical state.
        again = ReplicaService("replica-1", prefix)
        again.poll()
        assert again.world.fingerprint() == replica.world.fingerprint()
        assert again.last_committed_block == replica.last_committed_block

    @settings(max_examples=150, deadline=None)
    @given(flip=FLIPS, length=st.integers(min_value=0, max_value=10_000))
    def test_flipped_prefix_is_typed_error_or_certified_ancestor(
        self, flip, length
    ):
        feed, certified = build_feed()
        prefix = _prefix_feed(feed, length % (len(feed) + 1))
        if len(prefix) == 0:
            return  # nothing to damage
        raw = bytearray(prefix.read_from(0))
        position, mask = flip
        raw[position % len(raw)] ^= mask
        damaged = ShipFeed(epoch=feed.epoch)
        damaged.snapshots = list(feed.snapshots)
        damaged.append(bytes(raw))

        replica = ReplicaService("replica-0", damaged)
        try:
            replica.poll()
        except (JournalCorruptionError, ReplicationError):
            assert replica.state == "quarantined"
            # Even quarantined, the world never left the certified chain.
            assert replica.world.fingerprint() in certified
            return
        assert replica.world.fingerprint() in certified

    @settings(max_examples=150, deadline=None)
    @given(
        cut=st.integers(min_value=0, max_value=10_000),
        batch=st.integers(min_value=1, max_value=5),
    )
    def test_incremental_delivery_converges(self, cut, batch):
        """Bytes arriving in two arbitrary chunks replay like one."""
        feed, certified = build_feed()
        total = len(feed)
        split = cut % (total + 1)
        staged = ShipFeed(epoch=feed.epoch)
        staged.snapshots = list(feed.snapshots)
        replica = ReplicaService("replica-0", staged)
        staged.append(feed.read_from(0)[:split])
        while replica.poll(max_frames=batch):
            pass
        assert replica.world.fingerprint() in certified
        staged.append(feed.read_from(split))
        while replica.poll(max_frames=batch):
            pass
        assert replica.world.fingerprint() in certified
        assert replica.last_committed_block == 3
