"""Property: the interpreter agrees with direct evaluation on random
straight-line ALU programs, and the SSA tracer's shadow stack stays in
lockstep with the real stack on those same programs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import primitives as prim
from repro.core.tracer import SSATracer
from repro.evm.assembler import assemble
from repro.evm.interpreter import ALU_FUNCS, execute_transaction
from repro.evm.message import BlockEnv, Transaction
from repro.evm.opcodes import Op, opcode_name
from repro.primitives import make_address
from repro.state import StateView, WorldState

CONTRACT = make_address(0xEC)
SENDER = make_address(0x5E)

BINARY_OPS = [
    Op.ADD, Op.MUL, Op.SUB, Op.DIV, Op.SDIV, Op.MOD, Op.SMOD,
    Op.LT, Op.GT, Op.SLT, Op.SGT, Op.EQ, Op.AND, Op.OR, Op.XOR,
    Op.BYTE, Op.SHL, Op.SHR, Op.SAR,
]

# A program step: either push a constant or apply a binary op (if two
# operands are available on the model stack).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, prim.UINT_MAX)),
        st.tuples(st.just("op"), st.sampled_from(BINARY_OPS)),
    ),
    min_size=1,
    max_size=25,
)


def evaluate_model(program) -> list[int]:
    """Reference evaluation using the pure ALU functions."""
    stack: list[int] = []
    for kind, payload in program:
        if kind == "push":
            stack.append(payload)
        elif len(stack) >= 2:
            a, b = stack.pop(), stack.pop()
            stack.append(ALU_FUNCS[payload](a, b))
    return stack


def to_assembly(program) -> str:
    lines = []
    for kind, payload in program:
        if kind == "push":
            lines.append(f"PUSH {payload}")
        else:
            lines.append("__MAYBE__" + opcode_name(payload))
    return lines


def run_program(program):
    """Execute on the EVM with ops applied only when the model allows."""
    source_lines = []
    depth = 0
    applied = []
    for kind, payload in program:
        if kind == "push":
            source_lines.append(f"PUSH {payload}")
            depth += 1
            applied.append((kind, payload))
        elif depth >= 2:
            source_lines.append(opcode_name(payload))
            depth -= 1
            applied.append((kind, payload))
    if depth == 0:
        return None, applied
    source_lines.append("PUSH0 MSTORE PUSH 32 PUSH0 RETURN")

    world = WorldState()
    world.set_code(CONTRACT, assemble("\n".join(source_lines)))
    world.set_balance(SENDER, 10**20)
    tracer = SSATracer()
    view = StateView(world)
    tx = Transaction(sender=SENDER, to=CONTRACT, gas_limit=5_000_000)
    result = execute_transaction(view, tx, BlockEnv(), tracer=tracer)
    return result, applied


@settings(max_examples=150, deadline=None)
@given(steps)
def test_interpreter_matches_reference(program):
    result, applied = run_program(program)
    if result is None:
        return
    model_stack = evaluate_model(applied)
    assert result.success, result.error
    assert int.from_bytes(result.return_data, "big") == model_stack[-1]


@settings(max_examples=80, deadline=None)
@given(steps)
def test_constant_programs_fold_to_empty_log(program):
    """All-constant inputs: the tracer must fold every ALU op (§5.2.1) —
    the log contains only the intrinsic envelope entries."""
    result, _ = run_program(program)
    if result is None:
        return
    assert result.success
