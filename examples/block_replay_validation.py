#!/usr/bin/env python3
"""Multi-block replay with MPT state-root validation (the §6.2 check).

Replays a sequence of mainnet-like blocks twice — once with the serial
executor and once with ParallelEVM — folding each block's writes into the
world state and comparing the full Merkle Patricia trie root after every
block, exactly the criterion the paper uses against Ethereum mainnet roots.
Also demonstrates the prefetching and pre-execution deployment modes on
the final block.

Run:  python examples/block_replay_validation.py
"""

from __future__ import annotations

from repro import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    ParallelEVMExecutor,
    SerialExecutor,
    build_chain,
)
from repro.bench.harness import block_touched_keys

BLOCKS = 4
TXS = 60  # root hashing is O(state); keep the demo snappy


def main() -> None:
    chain = build_chain(ChainSpec(tokens=3, amm_pairs=1, accounts=80))
    workload = MainnetWorkload(chain, MainnetConfig(txs_per_block=TXS))
    blocks = workload.blocks(14_000_000, BLOCKS)

    serial_world = chain.fresh_world()
    parallel_world = chain.fresh_world()
    executor = ParallelEVMExecutor(threads=16)

    print(f"Replaying {BLOCKS} blocks x {TXS} txs with root validation:\n")
    total_speedup = 0.0
    for block in blocks:
        serial = SerialExecutor().execute_block(
            serial_world, block.txs, block.env
        )
        serial_world.apply(serial.writes)
        serial_root = serial_world.state_root()

        result = executor.execute_block(parallel_world, block.txs, block.env)
        parallel_world.apply(result.writes)
        parallel_root = parallel_world.state_root()

        match = "OK " if parallel_root == serial_root else "MISMATCH"
        speedup = serial.makespan_us / result.makespan_us
        total_speedup += speedup
        print(
            f"  block {block.number}: root {serial_root.hex()[:16]}… "
            f"[{match}] speedup {speedup:.2f}x "
            f"({result.stats['redo_successes']}/"
            f"{result.stats['conflicting_txs']} conflicts redone)"
        )
        if parallel_root != serial_root:
            raise SystemExit("state divergence — serializability violated!")

    print(f"\nmean speedup: {total_speedup / BLOCKS:.2f}x; every block's MPT "
          "root matched the serial chain (paper §6.2).")

    # Deployment modes on one more block.
    block = workload.block(14_000_000 + BLOCKS)
    serial = SerialExecutor().execute_block(chain.fresh_world(), block.txs, block.env)

    warm_world = chain.fresh_world()
    warm_world.warm(block_touched_keys(chain, block))
    warm = executor.execute_block(warm_world, block.txs, block.env)
    assert warm.writes == serial.writes

    pre = ParallelEVMExecutor(threads=16, preexecute=True).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    assert pre.writes == serial.writes

    print("\nDeployment modes on one block (speedup vs cold serial):")
    cold = executor.execute_block(chain.fresh_world(), block.txs, block.env)
    for name, result in (
        ("ParallelEVM (cold)", cold),
        ("ParallelEVM + prefetch", warm),
        ("ParallelEVM + pre-execution", pre),
    ):
        print(f"  {name:<28} {serial.makespan_us / result.makespan_us:.2f}x")


if __name__ == "__main__":
    main()
