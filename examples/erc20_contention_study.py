#!/usr/bin/env python3
"""Contention study: the Figure 11 experiment as a runnable scenario.

Sweeps the conflicting-transaction ratio of ERC20 blocks from 0% to 100%
(every conflicting transaction drains the same owner via transferFrom —
the paper's §3.2 pattern) and compares how OCC, Block-STM and ParallelEVM
degrade.  This is the experiment that makes the operation-level argument
visible: at 100% contention, transaction-level schemes collapse toward
serial while ParallelEVM re-executes three-entry slices.

Run:  python examples/erc20_contention_study.py
"""

from __future__ import annotations

from repro import (
    BlockSTMExecutor,
    ChainSpec,
    OCCExecutor,
    ParallelEVMExecutor,
    SerialExecutor,
    build_chain,
    conflict_ratio_block,
)

RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)
TXS = 120


def main() -> None:
    chain = build_chain(ChainSpec(tokens=2, amm_pairs=1, accounts=300))
    executors = [
        OCCExecutor(threads=16),
        BlockSTMExecutor(threads=16),
        ParallelEVMExecutor(threads=16),
    ]

    print(f"{'conflict %':<12}" + "".join(f"{e.name:>14}" for e in executors)
          + f"{'PE redo stats':>28}")
    print("-" * 82)

    for i, ratio in enumerate(RATIOS):
        block = conflict_ratio_block(chain, 14_000_000 + i, TXS, ratio=ratio)
        serial = SerialExecutor().execute_block(
            chain.fresh_world(), block.txs, block.env
        )
        row = f"{ratio:<12.0%}"
        redo_note = ""
        for executor in executors:
            result = executor.execute_block(
                chain.fresh_world(), block.txs, block.env
            )
            assert result.writes == serial.writes
            row += f"{serial.makespan_us / result.makespan_us:>13.2f}x"
            if executor.name == "parallelevm":
                stats = result.stats
                redo_note = (
                    f"{stats['conflicting_txs']:>4} conflicts, "
                    f"{stats['redo_entries_total']:>5} entries redone"
                )
        print(row + f"{redo_note:>28}")

    print(
        "\nPaper (Figure 11): the three algorithms start at parity in "
        "conflict-free blocks;\nas contention grows, OCC and Block-STM fall "
        "off steeply while ParallelEVM degrades\ngently — only the "
        "operations touching the hot balance re-execute."
    )


if __name__ == "__main__":
    main()
