#!/usr/bin/env python3
"""Reproduce the paper's Figure 5: the SSA operation log of a transferFrom.

Executes ``tx2 = transferFrom_E(A, C, value)`` from §3.2 under the SSA
tracer, prints the generated operation log with its definition-use chains,
then injects the conflict from the example (tx1 changed balances[A]) and
walks the redo phase step by step — showing exactly which entries the DFS
over the definition-use graph selects and how few of them re-execute.

Run:  python examples/ssa_log_inspection.py
"""

from __future__ import annotations

from repro.contracts import ERC20, allowance_slot, balance_slot, encode_call
from repro.core.redo import redo
from repro.core.ssa_log import PseudoOp
from repro.core.tracer import SSATracer
from repro.evm import BlockEnv, Transaction, execute_transaction
from repro.evm.opcodes import opcode_name
from repro.primitives import make_address
from repro.state import StateView, WorldState
from repro.state.keys import storage_key

TOKEN = make_address(1)
A = make_address(0xA)  # the shared token owner
C = make_address(0xC)  # tx2's recipient
E = make_address(0xE)  # tx2's sender (the approved spender)
VALUE = 10


def build_world() -> WorldState:
    world = WorldState()
    world.set_code(TOKEN, ERC20)
    world.set_storage(TOKEN, balance_slot(A), 100)
    world.set_storage(TOKEN, allowance_slot(A, E), 1_000)
    world.set_balance(E, 10**18)
    return world


def name_of(opcode: int) -> str:
    if opcode >= 0x100:
        return PseudoOp(opcode).name
    return opcode_name(opcode)


def main() -> None:
    world = build_world()
    tracer = SSATracer()
    tx2 = Transaction(
        sender=E,
        to=TOKEN,
        data=encode_call(
            "transferFrom(address,address,uint256)", A, C, VALUE
        ),
        gas_limit=300_000,
    )
    view = StateView(world)
    result = execute_transaction(view, tx2, BlockEnv(), tracer=tracer)
    assert result.success

    log = tracer.log
    print(f"tx2 executed {result.ops_executed} EVM instructions;")
    print(f"the SSA operation log holds {len(log)} entries "
          f"({len(log) / result.ops_executed:.0%} of instructions):\n")
    print(log.dump())

    balances_a = storage_key(TOKEN, balance_slot(A))
    sources = log.direct_reads[balances_a]
    affected = log.dependents_of(list(sources))
    print(
        f"\nConflict on balances[A] (read at "
        f"{', '.join(f'L{s}' for s in sources)}): the definition-use DFS "
        f"selects {len(affected)} of {len(log)} entries:"
    )
    for lsn in affected:
        entry = log.entries[lsn]
        marker = "  (source)" if lsn in sources else ""
        print(f"  L{lsn:<3} {name_of(entry.opcode)}{marker}")

    # tx1 committed a transfer of 10 out of A: balances[A] is now 90.
    print("\n--- redo with balances[A] = 90 (tx1 took 10) ---")
    outcome = redo(log, {balances_a: 90})
    print(f"redo success: {outcome.success}")
    print(f"entries re-executed: {outcome.reexecuted}, "
          f"guards checked: {outcome.guards_checked}")
    for key, value in outcome.updated_writes.items():
        print(f"corrected write: {key} -> {value}")

    # The §3.2 abort case: tx1 drained A below tx2's needs.
    print("\n--- redo with balances[A] = 3 (insufficient for tx2) ---")
    world2 = build_world()
    tracer2 = SSATracer()
    view2 = StateView(world2)
    execute_transaction(view2, tx2, BlockEnv(), tracer=tracer2)
    outcome2 = redo(tracer2.log, {balances_a: 3})
    print(f"redo success: {outcome2.success}")
    print(f"reason: {outcome2.reason}")
    print("(the constraint guard caught the violated require — the "
          "transaction falls back to full re-execution, as in Figure 6)")


if __name__ == "__main__":
    main()
