#!/usr/bin/env python3
"""The paper's §7 future work, running: proposer/validator schedules.

The proposer executes the block with ParallelEVM and derives a schedule
from the committed footprints; validators then replay the block under two
schedule granularities:

- a *transaction-level dependency schedule* (each transaction waits for
  the transactions whose writes it reads) — which, instructively, loses
  to plain ParallelEVM on hot blocks because dependency chains serialise
  whole transactions;
- a *value schedule* (the proposer also ships the expected read values,
  BlockPilot-style) — the operation-level endpoint: every transaction
  executes immediately with serial-equivalent inputs.

Run:  python examples/proposer_validator_schedules.py
"""

from __future__ import annotations

from repro import (
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    ParallelEVMExecutor,
    ScheduledValidatorExecutor,
    SerialExecutor,
    build_chain,
    propose_schedule,
)


def main() -> None:
    chain = build_chain(ChainSpec(tokens=8, amm_pairs=3, accounts=500))
    block = MainnetWorkload(chain, MainnetConfig(txs_per_block=160)).block(
        14_000_000
    )
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )

    print("Proposer: executing the block with ParallelEVM and deriving the "
          "schedule...")
    schedule, proposer_result = propose_schedule(
        chain.fresh_world(), block.txs, block.env
    )
    print(
        f"  schedule: {schedule.edge_count()} dependency edges, "
        f"critical path {schedule.critical_path_length} of "
        f"{len(block.txs)} transactions\n"
    )

    rows = [("parallelevm (proposer run)", proposer_result, "")]

    dep = ScheduledValidatorExecutor(schedule, threads=16).execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    rows.append(
        ("validator: dependency schedule", dep,
         f"{dep.stats['fallbacks']} fallbacks")
    )

    value = ScheduledValidatorExecutor(
        schedule, threads=16, use_read_values=True
    ).execute_block(chain.fresh_world(), block.txs, block.env)
    rows.append(
        ("validator: value schedule", value,
         f"{value.stats['fallbacks']} fallbacks")
    )

    print(f"{'configuration':<34} {'speedup':>8}  notes")
    print("-" * 60)
    for name, result, notes in rows:
        assert result.writes == serial.writes, f"{name} diverged!"
        print(
            f"{name:<34} {serial.makespan_us / result.makespan_us:>7.2f}x  "
            f"{notes}"
        )

    print(
        "\nTakeaway: scheduling at transaction granularity re-serialises the "
        "hot chains\nthat ParallelEVM's redo phase keeps parallel; shipping "
        "read values (operation-\nlevel information) removes speculation "
        "cost entirely.  All three validators\nreproduced the serial state."
    )


if __name__ == "__main__":
    main()
