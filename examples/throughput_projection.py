#!/usr/bin/env python3
"""Throughput projection: what the speedups mean for a chain's TPS.

The paper's motivation (§1-§2) is that with modern consensus, *execution
speed* is the block-size bottleneck: halving execution time doubles how
many transactions fit in a block interval.  This scenario turns the
measured speedups into transactions-per-second projections for an
Ethereum-like chain (12 s blocks) and a Quorum-like permissioned chain
(1 s blocks), with and without the §6.3 optimizations.

Run:  python examples/throughput_projection.py
"""

from __future__ import annotations

from repro import (
    BlockSTMExecutor,
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    OCCExecutor,
    ParallelEVMExecutor,
    SerialExecutor,
    TwoPLExecutor,
    build_chain,
)
from repro.bench.harness import block_touched_keys


def main() -> None:
    chain = build_chain(ChainSpec(tokens=8, amm_pairs=3, accounts=500))
    block = MainnetWorkload(chain, MainnetConfig(txs_per_block=200)).block(
        14_000_000
    )
    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    tx_count = len(block)
    serial_tx_us = serial.makespan_us / tx_count

    configs = [("serial (geth baseline)", serial)]
    for executor in (
        TwoPLExecutor(threads=16),
        OCCExecutor(threads=16),
        BlockSTMExecutor(threads=16),
        ParallelEVMExecutor(threads=16),
    ):
        result = executor.execute_block(chain.fresh_world(), block.txs, block.env)
        assert result.writes == serial.writes
        configs.append((executor.name, result))

    # ParallelEVM + prefetching (Table 2's best deployable configuration).
    warm = chain.fresh_world()
    warm.warm(block_touched_keys(chain, block))
    prefetched = ParallelEVMExecutor(threads=16).execute_block(
        warm, block.txs, block.env
    )
    assert prefetched.writes == serial.writes
    configs.append(("parallelevm + prefetch", prefetched))

    print(
        f"Reference block: {tx_count} txs, serial execution "
        f"{serial.makespan_us / 1000:.1f} ms "
        f"({serial_tx_us:.0f} us/tx simulated)\n"
    )
    print(
        f"{'configuration':<26} {'speedup':>8} {'execution-limited tps':>22} "
        f"{'txs per 12s block':>18}"
    )
    print("-" * 78)
    for name, result in configs:
        per_tx_us = result.makespan_us / tx_count
        speedup = serial.makespan_us / result.makespan_us
        # With consensus no longer the bottleneck (§2.1), execution may use
        # the whole block interval: block size scales with execution rate.
        tps = 1e6 / per_tx_us
        print(
            f"{name:<26} {speedup:>7.2f}x {tps:>21,.0f} {tps * 12:>17,.0f}"
        )
    print(
        "\n(Projection: execution-rate-limited TPS; absolute values inherit "
        "the simulated\ncost model's scale — the *ratios* between rows are "
        "the reproduced result.)"
    )


if __name__ == "__main__":
    main()
