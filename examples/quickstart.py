#!/usr/bin/env python3
"""Quickstart: execute one mainnet-like block with every algorithm.

Builds a genesis chain (ERC20 tokens, AMM pairs, a crowdfund, funded
users), synthesizes a block with the paper's contention profile, runs it
through the serial baseline and all four concurrent executors, verifies
that every executor reproduces the serial state (Theorem 1), and prints
the Table-1-style speedup comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BlockSTMExecutor,
    ChainSpec,
    MainnetConfig,
    MainnetWorkload,
    OCCExecutor,
    ParallelEVMExecutor,
    SerialExecutor,
    TwoPLExecutor,
    build_chain,
)


def main() -> None:
    print("Building genesis chain (tokens, AMM pairs, funded accounts)...")
    chain = build_chain(ChainSpec(tokens=8, amm_pairs=3, accounts=500))

    print("Synthesizing a mainnet-like block (hot-spot contention)...")
    workload = MainnetWorkload(chain, MainnetConfig(txs_per_block=160))
    block = workload.block(14_000_000)
    print(f"  block {block.number}: {len(block)} transactions\n")

    serial = SerialExecutor().execute_block(
        chain.fresh_world(), block.txs, block.env
    )
    print(
        f"serial baseline: {serial.makespan_us / 1000:.2f} ms simulated, "
        f"{serial.gas_used:,} gas"
    )

    print(f"\n{'algorithm':<14} {'speedup':>8}  notes")
    print("-" * 60)
    for executor in (
        TwoPLExecutor(threads=16),
        OCCExecutor(threads=16),
        BlockSTMExecutor(threads=16),
        ParallelEVMExecutor(threads=16),
    ):
        result = executor.execute_block(chain.fresh_world(), block.txs, block.env)
        assert result.writes == serial.writes, "state diverged from serial!"
        speedup = serial.makespan_us / result.makespan_us
        notes = _describe(executor.name, result.stats)
        print(f"{executor.name:<14} {speedup:>7.2f}x  {notes}")

    print(
        "\nAll executors produced a final state identical to serial "
        "execution (Theorem 1)."
    )
    print("Paper reference (Table 1): 2PL 1.26x, OCC 2.49x, "
          "Block-STM 2.82x, ParallelEVM 4.28x.")


def _describe(name: str, stats: dict) -> str:
    if name == "2pl":
        return f"{stats['wounds']} wound-aborts"
    if name == "occ":
        return f"{stats['aborts']} aborted+re-executed txs"
    if name == "block-stm":
        return (
            f"{stats['aborts']} aborts, "
            f"{stats['estimate_suspensions']} estimate suspensions"
        )
    if name == "parallelevm":
        return (
            f"{stats['conflicting_txs']} conflicts, "
            f"{stats['redo_successes']} resolved by redo "
            f"({stats['redo_entries_total']} log entries re-executed)"
        )
    return ""


if __name__ == "__main__":
    main()
