"""Setuptools shim.

This environment is offline and has no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail; the legacy ``setup.py``
path keeps ``pip install -e .`` working.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
